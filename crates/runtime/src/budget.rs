//! [`ResourceBudget`] — the explicit resource envelope a job runs under.

use std::time::Duration;

use crate::error::ConfigError;

/// The resource envelope one sweep job executes within.
///
/// Every bound is enforced at safe points (chunk boundaries, attempt
/// boundaries, checkpoint-I/O boundaries) and trips *deterministically
/// gracefully*: the job ends [`crate::CellStatus::Degraded`] with a valid
/// durable checkpoint rather than being killed mid-state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResourceBudget {
    /// Wall-clock deadline for the whole job (attempts + backoff
    /// included), measured from the moment [`crate::Runtime::run_cells`]
    /// starts. `None` means unbounded.
    pub deadline: Option<Duration>,
    /// Hard cap on chain steps a job may execute via [`crate::run_chain`];
    /// requests beyond it are clamped and the job ends
    /// [`crate::DegradeReason::StepBudgetExhausted`]. `None` means
    /// unbounded.
    pub max_steps: Option<u64>,
    /// Extra attempts after a cell's first failure.
    pub max_retries: u32,
    /// Maximum rollbacks the recovery ladder may take per supervised run
    /// before it gives up.
    pub max_rollbacks: u32,
    /// Approximate memory ceiling in bytes, enforced indirectly by sizing
    /// the two bounded retention buffers a long run owns: checkpoint
    /// retention ([`ResourceBudget::checkpoint_retention`]) and telemetry
    /// ring capacity ([`ResourceBudget::ring_capacity`]). `None` means
    /// default sizing.
    pub memory_ceiling_bytes: Option<u64>,
}

impl Default for ResourceBudget {
    fn default() -> Self {
        ResourceBudget {
            deadline: None,
            max_steps: None,
            max_retries: 1,
            max_rollbacks: 3,
            memory_ceiling_bytes: None,
        }
    }
}

/// Rough size of one durable snapshot (state + RNG + observable log) for
/// the experiment scales this repo runs; used only to convert a memory
/// ceiling into a retention count, so precision is not required.
const APPROX_SNAPSHOT_BYTES: u64 = 64 * 1024;

/// Rough in-memory size of one telemetry ring entry, overhead included.
const APPROX_RING_ENTRY_BYTES: u64 = 32;

impl ResourceBudget {
    /// Clamps a requested step count to the step cap.
    #[must_use]
    pub fn clamp_steps(&self, requested: u64) -> u64 {
        self.max_steps.map_or(requested, |m| requested.min(m))
    }

    /// Whether `elapsed` wall-clock time has exhausted the deadline.
    #[must_use]
    pub fn deadline_exceeded(&self, elapsed: Duration) -> bool {
        self.deadline.is_some_and(|d| elapsed >= d)
    }

    /// How many checkpoint snapshots a cell may retain: the caller's
    /// `default_retain`, reduced when the memory ceiling cannot hold that
    /// many ~[`APPROX_SNAPSHOT_BYTES`] snapshots. Always at least 1 —
    /// resumability is never traded away entirely.
    #[must_use]
    pub fn checkpoint_retention(&self, default_retain: usize) -> usize {
        let default_retain = default_retain.max(1);
        match self.memory_ceiling_bytes {
            None => default_retain,
            Some(ceiling) => {
                // Half the ceiling for snapshots, half for telemetry.
                let fit =
                    usize::try_from(ceiling / 2 / APPROX_SNAPSHOT_BYTES).unwrap_or(usize::MAX);
                default_retain.min(fit.max(1))
            }
        }
    }

    /// Telemetry ring capacity implied by the memory ceiling, or `None`
    /// to keep the instrument's default. Clamped to [16, 256] — below 16
    /// the series stops being a series, above 256 the default already
    /// bounds it.
    #[must_use]
    pub fn ring_capacity(&self) -> Option<usize> {
        self.memory_ceiling_bytes.map(|ceiling| {
            let fit = usize::try_from(ceiling / 2 / APPROX_RING_ENTRY_BYTES).unwrap_or(usize::MAX);
            fit.clamp(16, 256)
        })
    }

    /// Rejects nonsensical budgets that would otherwise pass through
    /// silently and waste a whole run: a zero deadline (every job
    /// degrades before its first step), retries with the rollback ladder
    /// disabled (every retry replays into the same failure), and a
    /// memory ceiling too small to hold even one checkpoint snapshot
    /// (no durable resume point could ever be retained).
    ///
    /// Called by [`crate::SweepOptions::try_parse`] so bins reject these
    /// at flag-parse time; programmatic construction stays unvalidated
    /// because tests legitimately use degenerate budgets (e.g. a zero
    /// deadline to prove the trip path).
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] the budget violates.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.deadline == Some(Duration::ZERO) {
            return Err(ConfigError::ZeroDeadline);
        }
        if self.max_retries > 0 && self.max_rollbacks == 0 {
            return Err(ConfigError::RetriesWithoutRollbacks {
                retries: self.max_retries,
            });
        }
        if let Some(ceiling) = self.memory_ceiling_bytes {
            if ceiling < APPROX_SNAPSHOT_BYTES {
                return Err(ConfigError::MemoryCeilingTooSmall {
                    ceiling_bytes: ceiling,
                    min_bytes: APPROX_SNAPSHOT_BYTES,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unbounded_except_retries_and_rollbacks() {
        let b = ResourceBudget::default();
        assert_eq!(b.deadline, None);
        assert_eq!(b.max_steps, None);
        assert_eq!(b.max_retries, 1);
        assert_eq!(b.max_rollbacks, 3);
        assert_eq!(b.clamp_steps(u64::MAX), u64::MAX);
        assert!(!b.deadline_exceeded(Duration::from_secs(3600)));
        assert_eq!(b.checkpoint_retention(3), 3);
        assert_eq!(b.ring_capacity(), None);
    }

    #[test]
    fn step_cap_clamps_requests() {
        let b = ResourceBudget {
            max_steps: Some(5_000),
            ..ResourceBudget::default()
        };
        assert_eq!(b.clamp_steps(1_000), 1_000);
        assert_eq!(b.clamp_steps(50_000), 5_000);
    }

    #[test]
    fn memory_ceiling_shrinks_retention_but_never_below_one() {
        // 256 KiB ceiling: half for snapshots → two 64 KiB snapshots fit.
        let b = ResourceBudget {
            memory_ceiling_bytes: Some(256 * 1024),
            ..ResourceBudget::default()
        };
        assert_eq!(b.checkpoint_retention(5), 2);
        // A tiny ceiling still retains one snapshot.
        let tiny = ResourceBudget {
            memory_ceiling_bytes: Some(1),
            ..ResourceBudget::default()
        };
        assert_eq!(tiny.checkpoint_retention(5), 1);
        assert_eq!(tiny.ring_capacity(), Some(16));
        // A huge ceiling keeps the defaults.
        let big = ResourceBudget {
            memory_ceiling_bytes: Some(1 << 30),
            ..ResourceBudget::default()
        };
        assert_eq!(big.checkpoint_retention(5), 5);
        assert_eq!(big.ring_capacity(), Some(256));
    }

    #[test]
    fn validate_rejects_each_nonsensical_budget() {
        assert_eq!(
            ResourceBudget {
                deadline: Some(Duration::ZERO),
                ..ResourceBudget::default()
            }
            .validate(),
            Err(ConfigError::ZeroDeadline)
        );
        assert_eq!(
            ResourceBudget {
                max_retries: 2,
                max_rollbacks: 0,
                ..ResourceBudget::default()
            }
            .validate(),
            Err(ConfigError::RetriesWithoutRollbacks { retries: 2 })
        );
        assert_eq!(
            ResourceBudget {
                memory_ceiling_bytes: Some(APPROX_SNAPSHOT_BYTES - 1),
                ..ResourceBudget::default()
            }
            .validate(),
            Err(ConfigError::MemoryCeilingTooSmall {
                ceiling_bytes: APPROX_SNAPSHOT_BYTES - 1,
                min_bytes: APPROX_SNAPSHOT_BYTES,
            })
        );
        // Zero retries with zero rollbacks is a legitimate fail-fast
        // configuration, and one snapshot's worth of ceiling is viable.
        assert_eq!(
            ResourceBudget {
                max_retries: 0,
                max_rollbacks: 0,
                memory_ceiling_bytes: Some(APPROX_SNAPSHOT_BYTES),
                ..ResourceBudget::default()
            }
            .validate(),
            Ok(())
        );
        assert_eq!(ResourceBudget::default().validate(), Ok(()));
    }

    #[test]
    fn deadline_trips_at_the_boundary() {
        let b = ResourceBudget {
            deadline: Some(Duration::from_millis(100)),
            ..ResourceBudget::default()
        };
        assert!(!b.deadline_exceeded(Duration::from_millis(99)));
        assert!(b.deadline_exceeded(Duration::from_millis(100)));
    }
}
