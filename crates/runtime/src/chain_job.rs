//! [`run_chain`] — the one chunk loop every chain-driving bin shares.
//!
//! Before this existed, each sweep binary duplicated a two-branch block:
//! a supervised (checkpointed, self-healing) run when `--checkpoint-dir`
//! was set, and a hand-rolled chunk loop with heartbeats and audits
//! otherwise. [`run_chain`] folds both branches behind one call and adds
//! the budget enforcement of the [`crate::ResourceBudget`]: requested
//! steps are clamped to the step cap, the wall-clock deadline is checked
//! at every chunk boundary (and inside checkpoint I/O via the store's
//! cancel token), and any budget trip ends the job degraded — with its
//! last durable checkpoint step on record — instead of wedged or failed.

use std::cell::{Cell, RefCell};
use std::ops::ControlFlow;

use rand::Rng;
use sops_chains::{
    run_supervised, run_supervised_hooked, Auditable, AuxCodec, CancelKind, CheckpointError,
    CheckpointStore, ConvergenceMonitor, Diagnostics, MarkovChain, Repairable, SnapshotRng,
    StateCodec, SupervisedHooks, SupervisedOptions, SupervisedRun,
};

use crate::error::{DegradeReason, JobError};
use crate::events::RuntimeEvent;
use crate::runner::JobContext;

/// One chain-driving job description for [`run_chain`].
#[derive(Clone, Copy, Debug)]
pub struct ChainJob<'a> {
    /// Requested steps (clamped to the budget's step cap).
    pub steps: u64,
    /// Chunk length: audit/checkpoint/heartbeat/cancellation interval.
    pub every: u64,
    /// Checkpoint store for the supervised path; `None` runs the plain
    /// chunk loop (no rollback ladder, but still heartbeats, audits, and
    /// budget checks).
    pub store: Option<&'a CheckpointStore>,
    /// Storeless-path audit interval (the supervised path audits every
    /// chunk regardless).
    pub audit_every: Option<u64>,
}

/// Runs a chain job under the cell's [`JobContext`]: supervised when the
/// job has a checkpoint store, plain chunked execution otherwise.
///
/// Both paths beat the heartbeat per chunk, honor cooperative
/// cancellation at chunk boundaries (the supervised path also inside
/// checkpoint I/O, through the store's cancel token), clamp the step
/// request to the budget's cap, and stop at the wall-clock deadline. Any
/// budget trip or cancellation marks the cell degraded on `ctx` with the
/// last durable checkpoint step; the partial [`SupervisedRun`] is still
/// returned so the caller can report partial results.
///
/// The `on_chunk` hook is the caller's early-exit and side-channel seam
/// (telemetry flushes, hitting-time checks); breaking out of it is a
/// *successful* early exit, not a degradation.
///
/// # Errors
///
/// Returns a typed [`JobError`] on storage failure, corrupt checkpoints,
/// a failed audit (storeless path), or an exhausted rollback ladder
/// (supervised path).
pub fn run_chain<C, R, F, G>(
    ctx: &JobContext<'_>,
    chain: &C,
    state: &mut C::State,
    rng: &mut R,
    job: ChainJob<'_>,
    observe: F,
    mut on_chunk: G,
) -> Result<SupervisedRun, JobError>
where
    C: MarkovChain,
    C::State: StateCodec + Auditable + Repairable,
    R: Rng + SnapshotRng + ?Sized,
    F: FnMut(&C::State) -> f64,
    G: FnMut(u64, &mut C::State) -> ControlFlow<()>,
{
    let steps = ctx.budget().clamp_steps(job.steps);
    let step_capped = steps < job.steps;
    match job.store {
        Some(store) => {
            // Thread the cell's cancel token into the store so
            // cancellation is honored inside checkpoint I/O too.
            let store = store.clone().with_cancel(ctx.cancel_token());
            let opts = SupervisedOptions {
                steps,
                every: job.every,
                max_rollbacks: ctx.budget().max_rollbacks,
            };
            let mut deadline_tripped = false;
            let run = run_supervised(
                chain,
                state,
                rng,
                &store,
                &opts,
                ctx.heartbeat,
                observe,
                |t, s| {
                    if ctx.deadline_exceeded() {
                        deadline_tripped = true;
                        return ControlFlow::Break(());
                    }
                    on_chunk(t, s)
                },
            )
            .map_err(|e| match e {
                CheckpointError::Cancelled => JobError::Cancelled {
                    reason: ctx.cancel_reason(),
                    step: ctx.heartbeat.steps(),
                },
                other => JobError::from(other),
            })?;
            ctx.absorb(&run);
            if deadline_tripped {
                ctx.note_degraded(DegradeReason::DeadlineExceeded, run.last_durable_step);
            } else if step_capped && run.completed && run.steps >= steps {
                ctx.note_degraded(DegradeReason::StepBudgetExhausted, run.last_durable_step);
            }
            Ok(run)
        }
        None => run_plain(
            ctx,
            chain,
            state,
            rng,
            &job,
            steps,
            step_capped,
            observe,
            on_chunk,
        ),
    }
}

/// Why a monitored chain job stopped short of its step request for a
/// *good* reason (as opposed to a [`DegradeReason`], which records budget
/// trips and cancellations).
#[derive(Clone, Debug, PartialEq)]
pub enum StopReason {
    /// Every gating stopping rule held: the chain is statistically
    /// converged and the rest of the step budget was left unspent.
    Converged {
        /// Step count at which the monitor latched its decision.
        step: u64,
        /// The monitor's diagnostics snapshot at decision time
        /// (acceptance plateau delta, ESS, split-R̂, certificate streak).
        diagnostics: Diagnostics,
    },
}

/// [`SupervisedHooks`] adapter that feeds every chunk-boundary sample to
/// a [`ConvergenceMonitor`] and serializes the monitor's decision state
/// into the checkpoint sidecar, so a killed-and-resumed run replays to
/// the bit-identical stop decision.
struct MonitorHooks<'a, 'm, 'ctx, F, P, G> {
    ctx: &'a JobContext<'ctx>,
    monitor: &'a RefCell<&'m mut ConvergenceMonitor>,
    sample: &'a RefCell<F>,
    certify: P,
    on_chunk: G,
    deadline_tripped: &'a Cell<bool>,
}

impl<S, F, P, G> SupervisedHooks<S> for MonitorHooks<'_, '_, '_, F, P, G>
where
    F: FnMut(&S) -> f64,
    P: FnMut(&S) -> bool,
    G: FnMut(u64, &mut S) -> ControlFlow<()>,
{
    fn on_chunk(&mut self, step: u64, state: &mut S) -> ControlFlow<()> {
        // Deadline before monitor: a tripped deadline must not be
        // mistaken for (or masked by) a convergence stop.
        if self.ctx.deadline_exceeded() {
            self.deadline_tripped.set(true);
            return ControlFlow::Break(());
        }
        let value = (self.sample.borrow_mut())(state);
        let certified = (self.certify)(state);
        let mut monitor = self.monitor.borrow_mut();
        monitor.observe(step, value, certified);
        if monitor.converged().is_some() {
            return ControlFlow::Break(());
        }
        drop(monitor);
        (self.on_chunk)(step, state)
    }

    fn encode_aux(&self) -> Vec<u8> {
        self.monitor.borrow().encode_aux()
    }

    fn restore_aux(&mut self, step: u64, bytes: &[u8]) -> Result<(), String> {
        self.monitor.borrow_mut().restore_aux(step, bytes)
    }
}

/// Runs a chain job like [`run_chain`], but under a
/// [`ConvergenceMonitor`]: at every chunk boundary the monitor observes
/// `sample(state)` and `certify(state)`, and once its stopping rules all
/// hold the job ends early with `Ok` status, a
/// [`RuntimeEvent::Converged`] on the context, and
/// [`StopReason::Converged`] in the returned pair.
///
/// On the supervised path the monitor's decision state rides the
/// checkpoint aux sidecar: a killed run resumed against the same store
/// replays to the *bit-identical* stop decision (same step, same
/// diagnostics), and rollback restores the monitor alongside the chain
/// state so replayed spans are not double-counted.
///
/// The monitor is borrowed rather than constructed here so callers
/// choose the rule stack; build a fresh monitor per attempt — retries
/// resume it from the store's sidecar (supervised) or must start clean
/// (storeless).
///
/// # Errors
///
/// Same failure surface as [`run_chain`].
#[allow(clippy::too_many_arguments)]
pub fn run_chain_monitored<C, R, F, P, G>(
    ctx: &JobContext<'_>,
    chain: &C,
    state: &mut C::State,
    rng: &mut R,
    job: ChainJob<'_>,
    monitor: &mut ConvergenceMonitor,
    sample: F,
    mut certify: P,
    mut on_chunk: G,
) -> Result<(SupervisedRun, Option<StopReason>), JobError>
where
    C: MarkovChain,
    C::State: StateCodec + Auditable + Repairable,
    R: Rng + SnapshotRng + ?Sized,
    F: FnMut(&C::State) -> f64,
    P: FnMut(&C::State) -> bool,
    G: FnMut(u64, &mut C::State) -> ControlFlow<()>,
{
    let steps = ctx.budget().clamp_steps(job.steps);
    let step_capped = steps < job.steps;
    // The sample closure doubles as the run's `observe` and the monitor's
    // feed; `RefCell` lets both seams share one `FnMut`. Same for the
    // monitor, which the hooks need during the run and this function
    // needs afterwards.
    let sample = RefCell::new(sample);
    let shared = RefCell::new(monitor);
    let run = match job.store {
        Some(store) => {
            let store = store.clone().with_cancel(ctx.cancel_token());
            let opts = SupervisedOptions {
                steps,
                every: job.every,
                max_rollbacks: ctx.budget().max_rollbacks,
            };
            let deadline_tripped = Cell::new(false);
            let mut hooks = MonitorHooks {
                ctx,
                monitor: &shared,
                sample: &sample,
                certify,
                on_chunk,
                deadline_tripped: &deadline_tripped,
            };
            let run = run_supervised_hooked(
                chain,
                state,
                rng,
                &store,
                &opts,
                ctx.heartbeat,
                |s| (sample.borrow_mut())(s),
                &mut hooks,
            )
            .map_err(|e| match e {
                CheckpointError::Cancelled => JobError::Cancelled {
                    reason: ctx.cancel_reason(),
                    step: ctx.heartbeat.steps(),
                },
                other => JobError::from(other),
            })?;
            ctx.absorb(&run);
            if deadline_tripped.get() {
                ctx.note_degraded(DegradeReason::DeadlineExceeded, run.last_durable_step);
            } else if step_capped
                && run.completed
                && run.steps >= steps
                && shared.borrow().converged().is_none()
            {
                ctx.note_degraded(DegradeReason::StepBudgetExhausted, run.last_durable_step);
            }
            run
        }
        None => {
            // The plain loop would report `StepBudgetExhausted` itself
            // without knowing about convergence; suppress its check
            // (`step_capped: false`) and re-run it monitor-aware below.
            let run = run_plain(
                ctx,
                chain,
                state,
                rng,
                &job,
                steps,
                false,
                |s| (sample.borrow_mut())(s),
                |t, s: &mut C::State| {
                    let value = (sample.borrow_mut())(s);
                    let certified = certify(s);
                    let mut monitor = shared.borrow_mut();
                    monitor.observe(t, value, certified);
                    if monitor.converged().is_some() {
                        return ControlFlow::Break(());
                    }
                    drop(monitor);
                    on_chunk(t, s)
                },
            )?;
            if step_capped
                && run.completed
                && run.steps >= steps
                && shared.borrow().converged().is_none()
            {
                ctx.note_degraded(DegradeReason::StepBudgetExhausted, None);
            }
            run
        }
    };
    let monitor = shared.into_inner();
    let stop = monitor.converged().map(|(step, diagnostics)| {
        ctx.emit(RuntimeEvent::Converged {
            step,
            diagnostics: diagnostics.to_json(),
        });
        StopReason::Converged {
            step,
            diagnostics: diagnostics.clone(),
        }
    });
    Ok((run, stop))
}

/// The storeless chunk loop: no rollback ladder (there is nothing to roll
/// back to), but the same heartbeats, cancellation points, budget checks,
/// and from-scratch audits as the supervised path.
#[allow(clippy::too_many_arguments)]
fn run_plain<C, R, F, G>(
    ctx: &JobContext<'_>,
    chain: &C,
    state: &mut C::State,
    rng: &mut R,
    job: &ChainJob<'_>,
    steps: u64,
    step_capped: bool,
    mut observe: F,
    mut on_chunk: G,
) -> Result<SupervisedRun, JobError>
where
    C: MarkovChain,
    C::State: Auditable,
    R: Rng + ?Sized,
    F: FnMut(&C::State) -> f64,
    G: FnMut(u64, &mut C::State) -> ControlFlow<()>,
{
    assert!(job.every > 0, "chain job chunk length must be positive");
    let mut t = 0u64;
    let mut accepted = 0u64;
    let mut log = vec![(0, observe(state))];
    let mut since_audit = 0u64;
    let mut completed = true;
    while t < steps {
        if ctx.heartbeat.is_cancelled() {
            let kind = ctx.heartbeat.cancel_kind().unwrap_or(CancelKind::External);
            ctx.emit(RuntimeEvent::Cancelled { step: t, kind });
            ctx.note_degraded(ctx.cancel_reason(), None);
            completed = false;
            break;
        }
        if ctx.deadline_exceeded() {
            ctx.note_degraded(DegradeReason::DeadlineExceeded, None);
            completed = false;
            break;
        }
        let burst = job.every.min(steps - t);
        accepted += chain.run(state, burst, rng);
        t += burst;
        ctx.heartbeat.beat(t);
        if let Some(every) = job.audit_every {
            since_audit += burst;
            if since_audit >= every {
                since_audit = 0;
                let violations = state.audit_violations();
                if !violations.is_empty() {
                    return Err(JobError::AuditFailed {
                        step: t,
                        violations,
                    });
                }
            }
        }
        log.push((t, observe(state)));
        if on_chunk(t, state).is_break() {
            break;
        }
    }
    if completed && step_capped && t >= steps {
        ctx.note_degraded(DegradeReason::StepBudgetExhausted, None);
    }
    Ok(SupervisedRun {
        steps: t,
        accepted,
        log,
        resumed_from: None,
        rejected: Vec::new(),
        reaped: Vec::new(),
        snapshots_written: 0,
        events: Vec::new(),
        completed,
        last_durable_step: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_cells, BackoffPolicy, CellStatus, ResourceBudget, SweepOptions};
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A fresh scratch directory per test, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "sops-runtime-chainjob-{}-{tag}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Minimal checkpointable state: a counter with a trivial audit.
    #[derive(Clone, Debug, PartialEq)]
    struct Counter {
        x: u64,
    }

    impl StateCodec for Counter {
        fn encode_state(&self) -> Vec<u8> {
            self.x.to_le_bytes().to_vec()
        }
        fn decode_state(bytes: &[u8]) -> Result<Self, String> {
            let arr: [u8; 8] = bytes.try_into().map_err(|_| "bad length".to_string())?;
            Ok(Counter {
                x: u64::from_le_bytes(arr),
            })
        }
    }

    impl Auditable for Counter {
        fn audit_violations(&self) -> Vec<String> {
            Vec::new()
        }
    }

    impl Repairable for Counter {
        fn repair_state(&mut self) -> Result<Vec<String>, Vec<String>> {
            Ok(Vec::new())
        }
    }

    /// Lazy walk: increments with probability 1/2.
    struct Walk;

    impl MarkovChain for Walk {
        type State = Counter;
        fn step<R: Rng + ?Sized>(&self, s: &mut Counter, rng: &mut R) -> bool {
            if rng.random_range(0..2u8) == 0 {
                s.x += 1;
                true
            } else {
                false
            }
        }
    }

    fn fast_opts() -> SweepOptions {
        SweepOptions {
            backoff: BackoffPolicy {
                base_ms: 0,
                cap_ms: 0,
            },
            ..SweepOptions::default()
        }
    }

    #[test]
    fn step_budget_clamps_and_degrades_storeless_runs() {
        let opts = SweepOptions {
            budget: ResourceBudget {
                max_steps: Some(6_000),
                ..ResourceBudget::default()
            },
            ..fast_opts()
        };
        let outcomes = run_cells(vec!["cell"], &opts, |_, ctx| {
            let mut state = Counter { x: 0 };
            let mut rng = StdRng::seed_from_u64(7);
            let job = ChainJob {
                steps: 12_000,
                every: 1_000,
                store: None,
                audit_every: Some(2_000),
            };
            let run = run_chain(
                ctx,
                &Walk,
                &mut state,
                &mut rng,
                job,
                |s| s.x as f64,
                |_, _| ControlFlow::Continue(()),
            )?;
            Ok(run.steps)
        });
        assert_eq!(outcomes[0].result, Some(6_000));
        assert_eq!(
            outcomes[0].status,
            CellStatus::Degraded {
                reason: crate::DegradeReason::StepBudgetExhausted,
                last_durable_step: None,
            }
        );
    }

    #[test]
    fn early_exit_via_on_chunk_is_not_degraded() {
        let outcomes = run_cells(vec!["cell"], &fast_opts(), |_, ctx| {
            let mut state = Counter { x: 0 };
            let mut rng = StdRng::seed_from_u64(7);
            let job = ChainJob {
                steps: 100_000,
                every: 1_000,
                store: None,
                audit_every: None,
            };
            let run = run_chain(
                ctx,
                &Walk,
                &mut state,
                &mut rng,
                job,
                |s| s.x as f64,
                |t, _| {
                    if t >= 3_000 {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                },
            )?;
            Ok(run.steps)
        });
        assert_eq!(outcomes[0].result, Some(3_000));
        assert_eq!(outcomes[0].status, CellStatus::Ok);
    }

    #[test]
    fn supervised_step_budget_leaves_a_durable_checkpoint() {
        let scratch = Scratch::new("cap");
        let store = CheckpointStore::open(&scratch.0, 3).unwrap();
        let opts = SweepOptions {
            budget: ResourceBudget {
                max_steps: Some(4_000),
                ..ResourceBudget::default()
            },
            ..fast_opts()
        };
        let outcomes = run_cells(vec!["cell"], &opts, |_, ctx| {
            let mut state = Counter { x: 0 };
            let mut rng = StdRng::seed_from_u64(9);
            let job = ChainJob {
                steps: 50_000,
                every: 1_000,
                store: Some(&store),
                audit_every: None,
            };
            let run = run_chain(
                ctx,
                &Walk,
                &mut state,
                &mut rng,
                job,
                |s| s.x as f64,
                |_, _| ControlFlow::Continue(()),
            )?;
            Ok(run.steps)
        });
        assert_eq!(outcomes[0].result, Some(4_000));
        assert_eq!(
            outcomes[0].status,
            CellStatus::Degraded {
                reason: crate::DegradeReason::StepBudgetExhausted,
                last_durable_step: Some(4_000),
            }
        );
        // The checkpoint named by the status is durable and loadable.
        let rec = store.recover::<Counter>().unwrap();
        assert_eq!(rec.checkpoint.unwrap().step, 4_000);
    }

    /// A monitor stack tuned for the frozen `Frozen` chain below: plateau
    /// plus certificate, gating after a handful of samples.
    fn tight_monitor() -> ConvergenceMonitor {
        ConvergenceMonitor::new(6)
            .with_rule(Box::new(sops_chains::PlateauRule::new(3, 0.05)))
            .with_rule(Box::new(sops_chains::CertificateRule::new(2)))
    }

    /// A chain that stops moving after 5000 accepted steps, so its
    /// observable plateaus and the separation certificate holds.
    struct Freezes;

    impl MarkovChain for Freezes {
        type State = Counter;
        fn step<R: Rng + ?Sized>(&self, s: &mut Counter, rng: &mut R) -> bool {
            if s.x < 5_000 && rng.random_range(0..2u8) == 0 {
                s.x += 1;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn monitored_storeless_run_stops_converged_not_degraded() {
        let opts = SweepOptions {
            budget: ResourceBudget {
                max_steps: Some(400_000),
                ..ResourceBudget::default()
            },
            ..fast_opts()
        };
        let outcomes = run_cells(vec!["cell"], &opts, |_, ctx| {
            let mut state = Counter { x: 0 };
            let mut rng = StdRng::seed_from_u64(11);
            let job = ChainJob {
                steps: 1_000_000,
                every: 1_000,
                store: None,
                audit_every: None,
            };
            let mut monitor = tight_monitor();
            let (run, stop) = run_chain_monitored(
                ctx,
                &Freezes,
                &mut state,
                &mut rng,
                job,
                &mut monitor,
                |s| s.x as f64,
                |s| s.x >= 5_000,
                |_, _| ControlFlow::Continue(()),
            )?;
            let Some(StopReason::Converged { step, diagnostics }) = stop else {
                panic!("expected a convergence stop, got {stop:?}");
            };
            assert!(step < run.steps + 1, "stop step precedes run end");
            assert!(diagnostics.get("certificate_streak").unwrap() >= 2.0);
            Ok(step)
        });
        // Converged well before the (clamped) budget, and the step cap
        // must NOT be reported as a degradation.
        let stop_step = outcomes[0].result.expect("cell result");
        assert!(stop_step < 400_000);
        assert_eq!(outcomes[0].status, CellStatus::Ok);
    }

    #[test]
    fn monitored_supervised_run_emits_event_and_persists_sidecar() {
        let scratch = Scratch::new("monitored");
        let store = CheckpointStore::open(&scratch.0, 3).unwrap();
        let outcomes = run_cells(vec!["cell"], &fast_opts(), |_, ctx| {
            let mut state = Counter { x: 0 };
            let mut rng = StdRng::seed_from_u64(11);
            let job = ChainJob {
                steps: 1_000_000,
                every: 1_000,
                store: Some(&store),
                audit_every: None,
            };
            let mut monitor = tight_monitor();
            let (_, stop) = run_chain_monitored(
                ctx,
                &Freezes,
                &mut state,
                &mut rng,
                job,
                &mut monitor,
                |s| s.x as f64,
                |s| s.x >= 5_000,
                |_, _| ControlFlow::Continue(()),
            )?;
            let Some(StopReason::Converged { step, .. }) = stop else {
                panic!("expected a convergence stop, got {stop:?}");
            };
            Ok(step)
        });
        assert_eq!(outcomes[0].status, CellStatus::Ok);
        assert!(
            outcomes[0].events.iter().any(|e| e.kind() == "converged"),
            "converged event reaches the cell outcome: {:?}",
            outcomes[0].events
        );
        // The monitor's decision state rode the checkpoint sidecar: a
        // fresh monitor restored from the store replays to the same
        // latched decision without seeing a single new sample.
        let rec = store.recover::<Counter>().unwrap();
        let ckpt = rec.checkpoint.unwrap();
        assert!(!ckpt.aux.is_empty(), "aux sidecar persisted");
        let mut restored = tight_monitor();
        restored.restore_aux(ckpt.step, &ckpt.aux).unwrap();
        assert_eq!(
            restored.converged().map(|(s, _)| s),
            Some(outcomes[0].result.unwrap())
        );
    }

    #[test]
    fn zero_deadline_degrades_before_any_step() {
        let opts = SweepOptions {
            budget: ResourceBudget {
                deadline: Some(std::time::Duration::ZERO),
                ..ResourceBudget::default()
            },
            ..fast_opts()
        };
        let outcomes = run_cells(vec!["cell"], &opts, |_, ctx| {
            let mut state = Counter { x: 0 };
            let mut rng = StdRng::seed_from_u64(3);
            let job = ChainJob {
                steps: 10_000,
                every: 1_000,
                store: None,
                audit_every: None,
            };
            let run = run_chain(
                ctx,
                &Walk,
                &mut state,
                &mut rng,
                job,
                |s| s.x as f64,
                |_, _| ControlFlow::Continue(()),
            )?;
            Ok(run.steps)
        });
        assert_eq!(outcomes[0].result, Some(0));
        assert!(matches!(
            outcomes[0].status,
            CellStatus::Degraded {
                reason: crate::DegradeReason::DeadlineExceeded,
                ..
            }
        ));
    }
}
