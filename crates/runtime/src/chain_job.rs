//! [`run_chain`] — the one chunk loop every chain-driving bin shares.
//!
//! Before this existed, each sweep binary duplicated a two-branch block:
//! a supervised (checkpointed, self-healing) run when `--checkpoint-dir`
//! was set, and a hand-rolled chunk loop with heartbeats and audits
//! otherwise. [`run_chain`] folds both branches behind one call and adds
//! the budget enforcement of the [`crate::ResourceBudget`]: requested
//! steps are clamped to the step cap, the wall-clock deadline is checked
//! at every chunk boundary (and inside checkpoint I/O via the store's
//! cancel token), and any budget trip ends the job degraded — with its
//! last durable checkpoint step on record — instead of wedged or failed.

use std::ops::ControlFlow;

use rand::Rng;
use sops_chains::{
    run_supervised, Auditable, CancelKind, CheckpointError, CheckpointStore, MarkovChain,
    Repairable, SnapshotRng, StateCodec, SupervisedOptions, SupervisedRun,
};

use crate::error::{DegradeReason, JobError};
use crate::events::RuntimeEvent;
use crate::runner::JobContext;

/// One chain-driving job description for [`run_chain`].
#[derive(Clone, Copy, Debug)]
pub struct ChainJob<'a> {
    /// Requested steps (clamped to the budget's step cap).
    pub steps: u64,
    /// Chunk length: audit/checkpoint/heartbeat/cancellation interval.
    pub every: u64,
    /// Checkpoint store for the supervised path; `None` runs the plain
    /// chunk loop (no rollback ladder, but still heartbeats, audits, and
    /// budget checks).
    pub store: Option<&'a CheckpointStore>,
    /// Storeless-path audit interval (the supervised path audits every
    /// chunk regardless).
    pub audit_every: Option<u64>,
}

/// Runs a chain job under the cell's [`JobContext`]: supervised when the
/// job has a checkpoint store, plain chunked execution otherwise.
///
/// Both paths beat the heartbeat per chunk, honor cooperative
/// cancellation at chunk boundaries (the supervised path also inside
/// checkpoint I/O, through the store's cancel token), clamp the step
/// request to the budget's cap, and stop at the wall-clock deadline. Any
/// budget trip or cancellation marks the cell degraded on `ctx` with the
/// last durable checkpoint step; the partial [`SupervisedRun`] is still
/// returned so the caller can report partial results.
///
/// The `on_chunk` hook is the caller's early-exit and side-channel seam
/// (telemetry flushes, hitting-time checks); breaking out of it is a
/// *successful* early exit, not a degradation.
///
/// # Errors
///
/// Returns a typed [`JobError`] on storage failure, corrupt checkpoints,
/// a failed audit (storeless path), or an exhausted rollback ladder
/// (supervised path).
pub fn run_chain<C, R, F, G>(
    ctx: &JobContext<'_>,
    chain: &C,
    state: &mut C::State,
    rng: &mut R,
    job: ChainJob<'_>,
    observe: F,
    mut on_chunk: G,
) -> Result<SupervisedRun, JobError>
where
    C: MarkovChain,
    C::State: StateCodec + Auditable + Repairable,
    R: Rng + SnapshotRng + ?Sized,
    F: FnMut(&C::State) -> f64,
    G: FnMut(u64, &mut C::State) -> ControlFlow<()>,
{
    let steps = ctx.budget().clamp_steps(job.steps);
    let step_capped = steps < job.steps;
    match job.store {
        Some(store) => {
            // Thread the cell's cancel token into the store so
            // cancellation is honored inside checkpoint I/O too.
            let store = store.clone().with_cancel(ctx.cancel_token());
            let opts = SupervisedOptions {
                steps,
                every: job.every,
                max_rollbacks: ctx.budget().max_rollbacks,
            };
            let mut deadline_tripped = false;
            let run = run_supervised(
                chain,
                state,
                rng,
                &store,
                &opts,
                ctx.heartbeat,
                observe,
                |t, s| {
                    if ctx.deadline_exceeded() {
                        deadline_tripped = true;
                        return ControlFlow::Break(());
                    }
                    on_chunk(t, s)
                },
            )
            .map_err(|e| match e {
                CheckpointError::Cancelled => JobError::Cancelled {
                    reason: ctx.cancel_reason(),
                    step: ctx.heartbeat.steps(),
                },
                other => JobError::from(other),
            })?;
            ctx.absorb(&run);
            if deadline_tripped {
                ctx.note_degraded(DegradeReason::DeadlineExceeded, run.last_durable_step);
            } else if step_capped && run.completed && run.steps >= steps {
                ctx.note_degraded(DegradeReason::StepBudgetExhausted, run.last_durable_step);
            }
            Ok(run)
        }
        None => run_plain(
            ctx,
            chain,
            state,
            rng,
            &job,
            steps,
            step_capped,
            observe,
            on_chunk,
        ),
    }
}

/// The storeless chunk loop: no rollback ladder (there is nothing to roll
/// back to), but the same heartbeats, cancellation points, budget checks,
/// and from-scratch audits as the supervised path.
#[allow(clippy::too_many_arguments)]
fn run_plain<C, R, F, G>(
    ctx: &JobContext<'_>,
    chain: &C,
    state: &mut C::State,
    rng: &mut R,
    job: &ChainJob<'_>,
    steps: u64,
    step_capped: bool,
    mut observe: F,
    mut on_chunk: G,
) -> Result<SupervisedRun, JobError>
where
    C: MarkovChain,
    C::State: Auditable,
    R: Rng + ?Sized,
    F: FnMut(&C::State) -> f64,
    G: FnMut(u64, &mut C::State) -> ControlFlow<()>,
{
    assert!(job.every > 0, "chain job chunk length must be positive");
    let mut t = 0u64;
    let mut accepted = 0u64;
    let mut log = vec![(0, observe(state))];
    let mut since_audit = 0u64;
    let mut completed = true;
    while t < steps {
        if ctx.heartbeat.is_cancelled() {
            let kind = ctx.heartbeat.cancel_kind().unwrap_or(CancelKind::External);
            ctx.emit(RuntimeEvent::Cancelled { step: t, kind });
            ctx.note_degraded(ctx.cancel_reason(), None);
            completed = false;
            break;
        }
        if ctx.deadline_exceeded() {
            ctx.note_degraded(DegradeReason::DeadlineExceeded, None);
            completed = false;
            break;
        }
        let burst = job.every.min(steps - t);
        accepted += chain.run(state, burst, rng);
        t += burst;
        ctx.heartbeat.beat(t);
        if let Some(every) = job.audit_every {
            since_audit += burst;
            if since_audit >= every {
                since_audit = 0;
                let violations = state.audit_violations();
                if !violations.is_empty() {
                    return Err(JobError::AuditFailed {
                        step: t,
                        violations,
                    });
                }
            }
        }
        log.push((t, observe(state)));
        if on_chunk(t, state).is_break() {
            break;
        }
    }
    if completed && step_capped && t >= steps {
        ctx.note_degraded(DegradeReason::StepBudgetExhausted, None);
    }
    Ok(SupervisedRun {
        steps: t,
        accepted,
        log,
        resumed_from: None,
        rejected: Vec::new(),
        reaped: Vec::new(),
        snapshots_written: 0,
        events: Vec::new(),
        completed,
        last_durable_step: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_cells, BackoffPolicy, CellStatus, ResourceBudget, SweepOptions};
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A fresh scratch directory per test, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "sops-runtime-chainjob-{}-{tag}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Minimal checkpointable state: a counter with a trivial audit.
    #[derive(Clone, Debug, PartialEq)]
    struct Counter {
        x: u64,
    }

    impl StateCodec for Counter {
        fn encode_state(&self) -> Vec<u8> {
            self.x.to_le_bytes().to_vec()
        }
        fn decode_state(bytes: &[u8]) -> Result<Self, String> {
            let arr: [u8; 8] = bytes.try_into().map_err(|_| "bad length".to_string())?;
            Ok(Counter {
                x: u64::from_le_bytes(arr),
            })
        }
    }

    impl Auditable for Counter {
        fn audit_violations(&self) -> Vec<String> {
            Vec::new()
        }
    }

    impl Repairable for Counter {
        fn repair_state(&mut self) -> Result<Vec<String>, Vec<String>> {
            Ok(Vec::new())
        }
    }

    /// Lazy walk: increments with probability 1/2.
    struct Walk;

    impl MarkovChain for Walk {
        type State = Counter;
        fn step<R: Rng + ?Sized>(&self, s: &mut Counter, rng: &mut R) -> bool {
            if rng.random_range(0..2u8) == 0 {
                s.x += 1;
                true
            } else {
                false
            }
        }
    }

    fn fast_opts() -> SweepOptions {
        SweepOptions {
            backoff: BackoffPolicy {
                base_ms: 0,
                cap_ms: 0,
            },
            ..SweepOptions::default()
        }
    }

    #[test]
    fn step_budget_clamps_and_degrades_storeless_runs() {
        let opts = SweepOptions {
            budget: ResourceBudget {
                max_steps: Some(6_000),
                ..ResourceBudget::default()
            },
            ..fast_opts()
        };
        let outcomes = run_cells(vec!["cell"], &opts, |_, ctx| {
            let mut state = Counter { x: 0 };
            let mut rng = StdRng::seed_from_u64(7);
            let job = ChainJob {
                steps: 12_000,
                every: 1_000,
                store: None,
                audit_every: Some(2_000),
            };
            let run = run_chain(
                ctx,
                &Walk,
                &mut state,
                &mut rng,
                job,
                |s| s.x as f64,
                |_, _| ControlFlow::Continue(()),
            )?;
            Ok(run.steps)
        });
        assert_eq!(outcomes[0].result, Some(6_000));
        assert_eq!(
            outcomes[0].status,
            CellStatus::Degraded {
                reason: crate::DegradeReason::StepBudgetExhausted,
                last_durable_step: None,
            }
        );
    }

    #[test]
    fn early_exit_via_on_chunk_is_not_degraded() {
        let outcomes = run_cells(vec!["cell"], &fast_opts(), |_, ctx| {
            let mut state = Counter { x: 0 };
            let mut rng = StdRng::seed_from_u64(7);
            let job = ChainJob {
                steps: 100_000,
                every: 1_000,
                store: None,
                audit_every: None,
            };
            let run = run_chain(
                ctx,
                &Walk,
                &mut state,
                &mut rng,
                job,
                |s| s.x as f64,
                |t, _| {
                    if t >= 3_000 {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                },
            )?;
            Ok(run.steps)
        });
        assert_eq!(outcomes[0].result, Some(3_000));
        assert_eq!(outcomes[0].status, CellStatus::Ok);
    }

    #[test]
    fn supervised_step_budget_leaves_a_durable_checkpoint() {
        let scratch = Scratch::new("cap");
        let store = CheckpointStore::open(&scratch.0, 3).unwrap();
        let opts = SweepOptions {
            budget: ResourceBudget {
                max_steps: Some(4_000),
                ..ResourceBudget::default()
            },
            ..fast_opts()
        };
        let outcomes = run_cells(vec!["cell"], &opts, |_, ctx| {
            let mut state = Counter { x: 0 };
            let mut rng = StdRng::seed_from_u64(9);
            let job = ChainJob {
                steps: 50_000,
                every: 1_000,
                store: Some(&store),
                audit_every: None,
            };
            let run = run_chain(
                ctx,
                &Walk,
                &mut state,
                &mut rng,
                job,
                |s| s.x as f64,
                |_, _| ControlFlow::Continue(()),
            )?;
            Ok(run.steps)
        });
        assert_eq!(outcomes[0].result, Some(4_000));
        assert_eq!(
            outcomes[0].status,
            CellStatus::Degraded {
                reason: crate::DegradeReason::StepBudgetExhausted,
                last_durable_step: Some(4_000),
            }
        );
        // The checkpoint named by the status is durable and loadable.
        let rec = store.recover::<Counter>().unwrap();
        assert_eq!(rec.checkpoint.unwrap().step, 4_000);
    }

    #[test]
    fn zero_deadline_degrades_before_any_step() {
        let opts = SweepOptions {
            budget: ResourceBudget {
                deadline: Some(std::time::Duration::ZERO),
                ..ResourceBudget::default()
            },
            ..fast_opts()
        };
        let outcomes = run_cells(vec!["cell"], &opts, |_, ctx| {
            let mut state = Counter { x: 0 };
            let mut rng = StdRng::seed_from_u64(3);
            let job = ChainJob {
                steps: 10_000,
                every: 1_000,
                store: None,
                audit_every: None,
            };
            let run = run_chain(
                ctx,
                &Walk,
                &mut state,
                &mut rng,
                job,
                |s| s.x as f64,
                |_, _| ControlFlow::Continue(()),
            )?;
            Ok(run.steps)
        });
        assert_eq!(outcomes[0].result, Some(0));
        assert!(matches!(
            outcomes[0].status,
            CellStatus::Degraded {
                reason: crate::DegradeReason::DeadlineExceeded,
                ..
            }
        ));
    }
}
