//! The stall watchdog's pure decision core.
//!
//! Splitting the *decision* (is this cell frozen?) from the *clock* (the
//! monitor thread's sleep loop) makes the poll/cancel race testable with
//! a deterministic fake clock: a test drives [`MonitorState::poll`]
//! directly, interleaves `Heartbeat::beat` calls wherever it wants, and
//! asserts that a cell that advanced between the poll and the cancel
//! decision is never killed (see `tests/watchdog_race.rs`).

/// Stall watchdog tuning: a cell whose heartbeat step counter is
/// unchanged for `stall_after` consecutive polls is cancelled and marked
/// [`crate::CellStatus::Degraded`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallPolicy {
    /// Poll interval in milliseconds.
    pub poll_ms: u64,
    /// Consecutive frozen polls before the cell is declared stalled.
    pub stall_after: u32,
}

impl StallPolicy {
    /// A policy that declares a stall after roughly `total_ms` of frozen
    /// heartbeat, polling 4 times within that window.
    #[must_use]
    pub fn with_timeout_ms(total_ms: u64) -> Self {
        StallPolicy {
            poll_ms: (total_ms / 4).max(1),
            stall_after: 4,
        }
    }
}

/// Per-cell freeze counters for the stall watchdog; every call to
/// [`MonitorState::poll`] is one tick of the (real or fake) clock.
#[derive(Debug)]
pub struct MonitorState {
    last: Vec<u64>,
    frozen: Vec<u32>,
    stall_after: u32,
}

impl MonitorState {
    /// Fresh counters for `cells` cells.
    #[must_use]
    pub fn new(cells: usize, stall_after: u32) -> Self {
        MonitorState {
            last: vec![0; cells],
            frozen: vec![0; cells],
            stall_after: stall_after.max(1),
        }
    }

    /// One poll tick over the observed `(steps, done)` of every cell.
    ///
    /// Returns the cells judged stalled as `(index, expected_step)` pairs.
    /// The verdict is *advisory*: the caller must confirm it against the
    /// live heartbeat with `Heartbeat::cancel_if_stalled_at(expected)`,
    /// which refuses to kill a cell that advanced after this poll — that
    /// two-phase protocol is what closes the poll/cancel race window.
    pub fn poll(&mut self, observed: &[(u64, bool)]) -> Vec<(usize, u64)> {
        assert_eq!(observed.len(), self.last.len(), "cell count mismatch");
        let mut stalled = Vec::new();
        for (i, &(now, done)) in observed.iter().enumerate() {
            if done {
                continue;
            }
            if now == self.last[i] {
                self.frozen[i] += 1;
                if self.frozen[i] >= self.stall_after {
                    stalled.push((i, now));
                }
            } else {
                self.frozen[i] = 0;
                self.last[i] = now;
            }
        }
        stalled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_timeout_splits_into_four_polls() {
        assert_eq!(
            StallPolicy::with_timeout_ms(8_000),
            StallPolicy {
                poll_ms: 2_000,
                stall_after: 4
            }
        );
        // Tiny timeouts still poll.
        assert_eq!(StallPolicy::with_timeout_ms(2).poll_ms, 1);
    }

    #[test]
    fn frozen_counter_triggers_after_threshold_and_resets_on_progress() {
        let mut mon = MonitorState::new(2, 3);
        // Cell 0 progresses, cell 1 freezes at 5. The first observation
        // of step 5 counts as progress from the initial 0; freeze polls
        // accumulate only after it.
        assert!(mon.poll(&[(10, false), (5, false)]).is_empty());
        assert!(mon.poll(&[(20, false), (5, false)]).is_empty());
        assert!(mon.poll(&[(30, false), (5, false)]).is_empty());
        assert_eq!(mon.poll(&[(40, false), (5, false)]), vec![(1, 5)]);
        // Progress resets the freeze count; cell 0 now freezes at 40.
        assert!(mon.poll(&[(40, false), (6, false)]).is_empty());
        assert!(mon.poll(&[(40, false), (7, false)]).is_empty());
        // Third consecutive frozen poll for cell 0 trips the threshold.
        assert_eq!(mon.poll(&[(40, false), (8, false)]), vec![(0, 40)]);
    }

    #[test]
    fn done_cells_are_never_reported() {
        let mut mon = MonitorState::new(1, 1);
        assert!(mon.poll(&[(0, true)]).is_empty());
        assert!(mon.poll(&[(0, true)]).is_empty());
    }
}
