//! Runtime events: the observable trace of supervision decisions.
//!
//! Every retry, repair, rollback, cancellation, and degradation a job goes
//! through becomes a [`RuntimeEvent`], collected on the job's
//! [`crate::JobContext`] and rendered both into the cells report and —
//! via [`RuntimeEvent::telemetry_line`] — into the per-cell JSONL
//! telemetry stream, so failures are observable, not just counted.

use crate::error::DegradeReason;
use sops_chains::telemetry::json_escape;
use sops_chains::CancelKind;

/// One supervision decision taken while running a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeEvent {
    /// A failed attempt is about to be retried after a backoff delay.
    Retry {
        /// The attempt about to run (2 = first retry).
        attempt: u32,
        /// The backoff delay slept before it, in milliseconds.
        delay_ms: u64,
        /// The failure kind that triggered the retry.
        error_kind: &'static str,
    },
    /// The recovery ladder repaired the state in place.
    Repaired {
        /// Step count at which the audit fired.
        step: u64,
    },
    /// The recovery ladder rolled back to a durable checkpoint.
    RolledBack {
        /// Step count at which the audit fired.
        from_step: u64,
        /// Step count of the restored checkpoint.
        to_step: u64,
    },
    /// The job observed cancellation and exited at a safe point.
    Cancelled {
        /// Step count reached when cancellation was observed.
        step: u64,
        /// Whether the cancel was external or a stall verdict.
        kind: CancelKind,
    },
    /// The job ended degraded (budget trip, stall, or external cancel).
    Degraded {
        /// Why the job degraded.
        reason: DegradeReason,
        /// The newest durable checkpoint step, if any was persisted.
        last_durable_step: Option<u64>,
    },
    /// The convergence monitor latched a stop decision and the job ended
    /// early with its budget unspent.
    Converged {
        /// Step count at which the stopping rules all held.
        step: u64,
        /// The monitor's diagnostics snapshot at decision time, pre-
        /// rendered as a JSON object (kept as a string so the event stays
        /// `Eq`-comparable despite carrying float estimates).
        diagnostics: String,
    },
    /// A job passed admission control and entered the service queue.
    Admitted {
        /// The submitting tenant.
        tenant: String,
        /// The session the job runs under.
        session: String,
        /// Queue depth immediately after admission (this job included).
        queue_depth: u64,
    },
    /// A job was refused admission with a typed reason.
    Rejected {
        /// The submitting tenant.
        tenant: String,
        /// The session the job would have run under.
        session: String,
        /// Stable rejection code: `queue_full`, `tenant_quota_exceeded`,
        /// or `draining`.
        reason: &'static str,
    },
    /// A queued or in-flight job was evicted (drain deadline, shutdown,
    /// or overload shedding).
    Evicted {
        /// The session the job ran under.
        session: String,
        /// Whether the session can resume from a durable checkpoint.
        resumable: bool,
        /// The newest durable checkpoint step, if any was persisted.
        last_durable_step: Option<u64>,
    },
    /// A session resumed from its last durable checkpoint.
    Resumed {
        /// The session that resumed.
        session: String,
        /// The checkpoint step it resumed from.
        from_step: u64,
    },
}

impl RuntimeEvent {
    /// The stable machine-readable event name.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            RuntimeEvent::Retry { .. } => "retry",
            RuntimeEvent::Repaired { .. } => "repaired",
            RuntimeEvent::RolledBack { .. } => "rolled_back",
            RuntimeEvent::Cancelled { .. } => "cancelled",
            RuntimeEvent::Degraded { .. } => "degraded",
            RuntimeEvent::Converged { .. } => "converged",
            RuntimeEvent::Admitted { .. } => "admitted",
            RuntimeEvent::Rejected { .. } => "rejected",
            RuntimeEvent::Evicted { .. } => "evicted",
            RuntimeEvent::Resumed { .. } => "resumed",
        }
    }

    /// Renders the event as a bare JSON object (no trailing newline) for
    /// embedding in the cells report's per-cell `events` array.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            RuntimeEvent::Retry {
                attempt,
                delay_ms,
                error_kind,
            } => format!(
                "{{\"event\": \"retry\", \"attempt\": {attempt}, \"delay_ms\": {delay_ms}, \
                 \"error_kind\": \"{}\"}}",
                json_escape(error_kind)
            ),
            RuntimeEvent::Repaired { step } => {
                format!("{{\"event\": \"repaired\", \"step\": {step}}}")
            }
            RuntimeEvent::RolledBack { from_step, to_step } => format!(
                "{{\"event\": \"rolled_back\", \"from_step\": {from_step}, \
                 \"to_step\": {to_step}}}"
            ),
            RuntimeEvent::Cancelled { step, kind } => {
                let kind = match kind {
                    CancelKind::External => "external",
                    CancelKind::Stalled => "stalled",
                };
                format!(
                    "{{\"event\": \"cancelled\", \"step\": {step}, \"cancel_kind\": \"{kind}\"}}"
                )
            }
            RuntimeEvent::Degraded {
                reason,
                last_durable_step,
            } => {
                let durable =
                    last_durable_step.map_or_else(|| "null".to_string(), |s| s.to_string());
                format!(
                    "{{\"event\": \"degraded\", \"reason\": \"{}\", \
                     \"last_durable_step\": {durable}}}",
                    reason.code()
                )
            }
            RuntimeEvent::Converged { step, diagnostics } => {
                // `diagnostics` is already a JSON object; embed it raw.
                format!("{{\"event\": \"converged\", \"step\": {step}, \"diagnostics\": {diagnostics}}}")
            }
            RuntimeEvent::Admitted {
                tenant,
                session,
                queue_depth,
            } => format!(
                "{{\"event\": \"admitted\", \"tenant\": \"{}\", \"session\": \"{}\", \
                 \"queue_depth\": {queue_depth}}}",
                json_escape(tenant),
                json_escape(session)
            ),
            RuntimeEvent::Rejected {
                tenant,
                session,
                reason,
            } => format!(
                "{{\"event\": \"rejected\", \"tenant\": \"{}\", \"session\": \"{}\", \
                 \"reason\": \"{}\"}}",
                json_escape(tenant),
                json_escape(session),
                json_escape(reason)
            ),
            RuntimeEvent::Evicted {
                session,
                resumable,
                last_durable_step,
            } => {
                let durable =
                    last_durable_step.map_or_else(|| "null".to_string(), |s| s.to_string());
                format!(
                    "{{\"event\": \"evicted\", \"session\": \"{}\", \"resumable\": {resumable}, \
                     \"last_durable_step\": {durable}}}",
                    json_escape(session)
                )
            }
            RuntimeEvent::Resumed { session, from_step } => format!(
                "{{\"event\": \"resumed\", \"session\": \"{}\", \"from_step\": {from_step}}}",
                json_escape(session)
            ),
        }
    }

    /// Renders the event as a full JSONL telemetry record, in the same
    /// `{"kind": ...}` framing the metric sink uses.
    #[must_use]
    pub fn telemetry_line(&self) -> String {
        format!(
            "{{\"kind\": \"runtime_event\", \"payload\": {}}}",
            self.to_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_stable_json() {
        let e = RuntimeEvent::Retry {
            attempt: 2,
            delay_ms: 150,
            error_kind: "panic",
        };
        assert_eq!(
            e.to_json(),
            "{\"event\": \"retry\", \"attempt\": 2, \"delay_ms\": 150, \
             \"error_kind\": \"panic\"}"
        );
        let e = RuntimeEvent::Degraded {
            reason: DegradeReason::StepBudgetExhausted,
            last_durable_step: None,
        };
        assert!(e.to_json().contains("\"last_durable_step\": null"));
        let e = RuntimeEvent::Cancelled {
            step: 9,
            kind: CancelKind::Stalled,
        };
        assert!(e
            .telemetry_line()
            .starts_with("{\"kind\": \"runtime_event\""));
        assert!(e.telemetry_line().contains("\"cancel_kind\": \"stalled\""));
        let e = RuntimeEvent::Converged {
            step: 50_000,
            diagnostics: "{\"samples\": 12, \"r_hat\": 1.01}".to_string(),
        };
        assert_eq!(e.kind(), "converged");
        assert_eq!(
            e.to_json(),
            "{\"event\": \"converged\", \"step\": 50000, \
             \"diagnostics\": {\"samples\": 12, \"r_hat\": 1.01}}"
        );
    }

    #[test]
    fn service_events_render_stable_json() {
        let e = RuntimeEvent::Admitted {
            tenant: "acme".to_string(),
            session: "acme/s-1".to_string(),
            queue_depth: 7,
        };
        assert_eq!(e.kind(), "admitted");
        assert_eq!(
            e.to_json(),
            "{\"event\": \"admitted\", \"tenant\": \"acme\", \"session\": \"acme/s-1\", \
             \"queue_depth\": 7}"
        );
        let e = RuntimeEvent::Rejected {
            tenant: "acme".to_string(),
            session: "acme/s-2".to_string(),
            reason: "queue_full",
        };
        assert_eq!(
            e.to_json(),
            "{\"event\": \"rejected\", \"tenant\": \"acme\", \"session\": \"acme/s-2\", \
             \"reason\": \"queue_full\"}"
        );
        let e = RuntimeEvent::Evicted {
            session: "acme/s-1".to_string(),
            resumable: true,
            last_durable_step: Some(4_000),
        };
        assert_eq!(
            e.to_json(),
            "{\"event\": \"evicted\", \"session\": \"acme/s-1\", \"resumable\": true, \
             \"last_durable_step\": 4000}"
        );
        let e = RuntimeEvent::Evicted {
            session: "x".to_string(),
            resumable: false,
            last_durable_step: None,
        };
        assert!(e.to_json().contains("\"last_durable_step\": null"));
        let e = RuntimeEvent::Resumed {
            session: "acme/s-1".to_string(),
            from_step: 4_000,
        };
        assert_eq!(
            e.to_json(),
            "{\"event\": \"resumed\", \"session\": \"acme/s-1\", \"from_step\": 4000}"
        );
        assert!(e
            .telemetry_line()
            .starts_with("{\"kind\": \"runtime_event\""));
    }
}
