//! The typed failure taxonomy: [`JobError`] for terminal failures,
//! [`DegradeReason`] for budget-driven graceful degradation.

use std::fmt;

use sops_chains::telemetry::json_escape;
use sops_chains::CheckpointError;

/// Why a job was degraded rather than completed.
///
/// Degradation is the *deterministic, graceful* end of a job whose budget
/// tripped: the job stops at a chunk boundary with a valid durable
/// checkpoint and a partial result, rather than wedging or dying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeReason {
    /// The stall watchdog found the heartbeat frozen and the cell exited
    /// cooperatively.
    Stalled,
    /// The wall-clock deadline of the [`crate::ResourceBudget`] elapsed.
    DeadlineExceeded,
    /// The step cap of the [`crate::ResourceBudget`] was reached before
    /// the requested work finished.
    StepBudgetExhausted,
    /// The caller cancelled via a [`crate::CancelToken`].
    ExternalCancel,
}

impl DegradeReason {
    /// The stable machine-readable code serialized into cells reports.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            DegradeReason::Stalled => "stalled",
            DegradeReason::DeadlineExceeded => "deadline_exceeded",
            DegradeReason::StepBudgetExhausted => "step_budget_exhausted",
            DegradeReason::ExternalCancel => "external_cancel",
        }
    }
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A typed terminal failure of one sweep cell.
///
/// Replaces the earlier stringly error channel: each variant carries a
/// stable [`JobError::kind`] code plus the structured context that used to
/// be flattened into a message, so cells reports are machine-checkable.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum JobError {
    /// The cell's work function panicked (caught by the runtime's
    /// per-job `catch_unwind`; the panic never crosses the cell).
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// Storage or filesystem failure (checkpoint I/O, telemetry sink).
    Io {
        /// The rendered I/O error.
        message: String,
    },
    /// A checkpoint failed validation when it was loaded directly.
    CorruptCheckpoint {
        /// The offending snapshot path.
        path: String,
        /// What failed to validate.
        reason: String,
    },
    /// The state failed its invariant audit outside the supervised
    /// ladder (e.g. the storeless chunk loop, where rollback is
    /// impossible).
    AuditFailed {
        /// Step count at which the audit fired.
        step: u64,
        /// Human-readable invariant violations.
        violations: Vec<String>,
    },
    /// The supervised ladder ran out of rollback budget: repair failed
    /// and more than `max_rollbacks` rollbacks were needed.
    RollbackBudgetExhausted {
        /// Step count at which the final audit fired.
        step: u64,
        /// The violations that exhausted the ladder.
        violations: Vec<String>,
    },
    /// The job was cancelled and produced no result at all. (A cancelled
    /// job that *did* produce a partial result reports
    /// [`crate::CellStatus::Degraded`] with a value instead.)
    Cancelled {
        /// Why the cancellation happened.
        reason: DegradeReason,
        /// Step count reached when the cancellation was observed.
        step: u64,
    },
    /// An application-level failure reported by the cell itself.
    App {
        /// The cell's error message.
        message: String,
    },
}

impl JobError {
    /// An application-level error from a message.
    pub fn app(message: impl Into<String>) -> Self {
        JobError::App {
            message: message.into(),
        }
    }

    /// The stable machine-readable code serialized into cells reports.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Panic { .. } => "panic",
            JobError::Io { .. } => "io",
            JobError::CorruptCheckpoint { .. } => "corrupt_checkpoint",
            JobError::AuditFailed { .. } => "audit_failed",
            JobError::RollbackBudgetExhausted { .. } => "rollback_budget_exhausted",
            JobError::Cancelled { .. } => "cancelled",
            JobError::App { .. } => "app",
        }
    }

    /// Renders the error as a JSON object `{"kind": ..., "message": ...}`
    /// (plus a `"step"` field where one applies) for the cells report.
    #[must_use]
    pub fn to_json(&self) -> String {
        let step = match self {
            JobError::AuditFailed { step, .. }
            | JobError::RollbackBudgetExhausted { step, .. }
            | JobError::Cancelled { step, .. } => Some(*step),
            _ => None,
        };
        let mut out = format!(
            "{{\"kind\": \"{}\", \"message\": \"{}\"",
            self.kind(),
            json_escape(&self.to_string())
        );
        if let Some(step) = step {
            out.push_str(&format!(", \"step\": {step}"));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Panic { message } => write!(f, "panic: {message}"),
            JobError::Io { message } => write!(f, "I/O error: {message}"),
            JobError::CorruptCheckpoint { path, reason } => {
                write!(f, "corrupt checkpoint {path}: {reason}")
            }
            JobError::AuditFailed { step, violations } => write!(
                f,
                "invariant audit failed at step {step}: {}",
                violations.join("; ")
            ),
            JobError::RollbackBudgetExhausted { step, violations } => write!(
                f,
                "rollback budget exhausted at step {step}: {}",
                violations.join("; ")
            ),
            JobError::Cancelled { reason, step } => {
                write!(f, "cancelled ({reason}) at step {step}")
            }
            JobError::App { message } => f.write_str(message),
        }
    }
}

impl std::error::Error for JobError {}

/// A rejected configuration: a flag value or combination that would make
/// a run silently meaningless (zero budgets, retries that can never
/// replay, ceilings too small to hold one snapshot).
///
/// Returned by [`crate::SweepOptions::try_parse`] and
/// [`crate::ResourceBudget::validate`] so bins fail loudly at parse time
/// instead of spending hours on a run that was never viable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `--deadline-ms 0`: a zero wall-clock deadline degrades every job
    /// before its first step.
    ZeroDeadline,
    /// `--retries N` (N > 0) combined with `--max-rollbacks 0`: retries
    /// replay through the rollback ladder, so disabling rollbacks makes
    /// every retry fail identically.
    RetriesWithoutRollbacks {
        /// The configured retry count.
        retries: u32,
    },
    /// `--memory-mb` below the size of a single checkpoint snapshot: the
    /// store could never retain even one durable resume point.
    MemoryCeilingTooSmall {
        /// The configured ceiling, in bytes.
        ceiling_bytes: u64,
        /// The minimum viable ceiling (one snapshot), in bytes.
        min_bytes: u64,
    },
    /// A flag was given with no value following it.
    MissingValue {
        /// The flag name as typed.
        flag: String,
    },
    /// A flag value failed to parse.
    InvalidValue {
        /// The flag name as typed.
        flag: String,
        /// The offending value.
        value: String,
    },
}

impl ConfigError {
    /// The stable machine-readable code.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ConfigError::ZeroDeadline => "zero_deadline",
            ConfigError::RetriesWithoutRollbacks { .. } => "retries_without_rollbacks",
            ConfigError::MemoryCeilingTooSmall { .. } => "memory_ceiling_too_small",
            ConfigError::MissingValue { .. } => "missing_value",
            ConfigError::InvalidValue { .. } => "invalid_value",
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroDeadline => {
                f.write_str("--deadline-ms 0 would degrade every job before its first step")
            }
            ConfigError::RetriesWithoutRollbacks { retries } => write!(
                f,
                "--retries {retries} with --max-rollbacks 0 can never make progress: \
                 retries replay through the rollback ladder"
            ),
            ConfigError::MemoryCeilingTooSmall {
                ceiling_bytes,
                min_bytes,
            } => write!(
                f,
                "memory ceiling of {ceiling_bytes} bytes cannot hold one checkpoint \
                 snapshot (~{min_bytes} bytes); raise --memory-mb"
            ),
            ConfigError::MissingValue { flag } => write!(f, "flag {flag} expects a value"),
            ConfigError::InvalidValue { flag, value } => {
                write!(f, "invalid value for {flag}: {value:?}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<String> for JobError {
    fn from(message: String) -> Self {
        JobError::App { message }
    }
}

impl From<std::io::Error> for JobError {
    fn from(e: std::io::Error) -> Self {
        JobError::Io {
            message: e.to_string(),
        }
    }
}

impl From<CheckpointError> for JobError {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(e) => JobError::Io {
                message: e.to_string(),
            },
            CheckpointError::Corrupt { path, reason } => JobError::CorruptCheckpoint {
                path: path.display().to_string(),
                reason,
            },
            CheckpointError::AuditFailed { step, violations } => {
                // The supervised runner only surfaces AuditFailed once its
                // rollback ladder is spent, so that is what the code says.
                JobError::RollbackBudgetExhausted { step, violations }
            }
            // Lossy fallback: callers that know the real reason and step
            // (e.g. run_chain) intercept Cancelled before converting.
            CheckpointError::Cancelled => JobError::Cancelled {
                reason: DegradeReason::ExternalCancel,
                step: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_codes_are_stable() {
        assert_eq!(JobError::app("x").kind(), "app");
        assert_eq!(
            JobError::Panic {
                message: "boom".into()
            }
            .kind(),
            "panic"
        );
        assert_eq!(DegradeReason::Stalled.code(), "stalled");
        assert_eq!(
            DegradeReason::StepBudgetExhausted.code(),
            "step_budget_exhausted"
        );
    }

    #[test]
    fn json_rendering_escapes_and_carries_step() {
        let e = JobError::Cancelled {
            reason: DegradeReason::DeadlineExceeded,
            step: 4_000,
        };
        let json = e.to_json();
        assert!(json.contains("\"kind\": \"cancelled\""));
        assert!(json.contains("\"step\": 4000"));
        let e = JobError::app("say \"hi\"");
        assert!(e.to_json().contains("say \\\"hi\\\""));
    }

    #[test]
    fn checkpoint_errors_map_to_typed_variants() {
        let e: JobError = CheckpointError::AuditFailed {
            step: 7,
            violations: vec!["drift".into()],
        }
        .into();
        assert!(matches!(
            e,
            JobError::RollbackBudgetExhausted { step: 7, .. }
        ));
        let e: JobError = CheckpointError::Io(std::io::Error::other("disk on fire")).into();
        assert_eq!(e.kind(), "io");
        assert!(e.to_string().contains("disk on fire"));
    }
}
