//! The per-cell outcome report: `results/<bin>-cells.json`.
//!
//! Every sweep bin writes one of these regardless of how its cells ended,
//! so a partially failed sweep is visible in the artifact, not just the
//! scrollback. Schema per cell: `cell`, `attempts`, `status`
//! (`ok` / `recovered` / `degraded` / `failed`), `ok`; a `degraded` cell
//! adds `degrade_reason` and `last_durable_step`; a failed cell carries a
//! typed `error` object (`kind`, `message`, optional `step`); and every
//! cell lists its runtime `events` (retries, repairs, rollbacks,
//! cancellations, degradations).

use std::fmt;
use std::path::Path;

use sops_chains::telemetry::json_escape;

use crate::runner::{CellOutcome, CellStatus};

/// Writes per-cell outcomes to `<dir>/<bin>-cells.json` and returns the
/// rendered JSON. Cell values are recorded through their `Debug` form so
/// a failed sweep still documents what the surviving cells produced.
///
/// # Panics
///
/// Panics when the report file cannot be written — a results directory
/// that rejects writes is not a per-cell failure but a broken harness.
pub fn write_cell_report<T: fmt::Debug>(
    dir: &Path,
    bin: &str,
    outcomes: &[CellOutcome<T>],
) -> String {
    let json = render_cell_report(bin, outcomes);
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| panic!("create results dir {}: {e}", dir.display()));
    let path = dir.join(format!("{bin}-cells.json"));
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("  saved {}", path.display());
    json
}

/// Renders the per-cell outcome JSON without touching the filesystem.
#[must_use]
pub fn render_cell_report<T: fmt::Debug>(bin: &str, outcomes: &[CellOutcome<T>]) -> String {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"bin\": \"{}\",\n", json_escape(bin)));
    json.push_str(&format!(
        "  \"cells_failed\": {},\n",
        outcomes
            .iter()
            .filter(|o| o.status == CellStatus::Failed)
            .count()
    ));
    json.push_str(&format!(
        "  \"cells_degraded\": {},\n",
        outcomes
            .iter()
            .filter(|o| matches!(o.status, CellStatus::Degraded { .. }))
            .count()
    ));
    json.push_str(&format!(
        "  \"cells_recovered\": {},\n",
        outcomes
            .iter()
            .filter(|o| o.status == CellStatus::Recovered)
            .count()
    ));
    json.push_str("  \"cells\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str("    {");
        json.push_str(&format!("\"cell\": \"{}\", ", json_escape(&o.cell)));
        json.push_str(&format!("\"attempts\": {}, ", o.attempts));
        json.push_str(&format!("\"status\": \"{}\", ", o.status.as_str()));
        if let CellStatus::Degraded {
            reason,
            last_durable_step,
        } = o.status
        {
            json.push_str(&format!("\"degrade_reason\": \"{}\", ", reason.code()));
            json.push_str(&format!(
                "\"last_durable_step\": {}, ",
                last_durable_step.map_or_else(|| "null".to_string(), |s| s.to_string())
            ));
        }
        json.push_str(&format!("\"ok\": {}, ", o.is_ok()));
        match (&o.result, &o.error) {
            (Some(v), _) => {
                json.push_str(&format!(
                    "\"value\": \"{}\", ",
                    json_escape(&format!("{v:?}"))
                ));
            }
            (None, Some(e)) => json.push_str(&format!("\"error\": {}, ", e.to_json())),
            (None, None) => {
                json.push_str("\"error\": {\"kind\": \"app\", \"message\": \"unknown\"}, ");
            }
        }
        let events: Vec<String> = o.events.iter().map(crate::RuntimeEvent::to_json).collect();
        json.push_str(&format!("\"events\": [{}]", events.join(", ")));
        json.push('}');
        json.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DegradeReason, JobError, RuntimeEvent};

    #[test]
    fn json_report_escapes_counts_and_reports_status() {
        let outcomes = vec![
            CellOutcome {
                cell: "ok\"cell".to_string(),
                attempts: 1,
                status: CellStatus::Ok,
                result: Some(1.5f64),
                error: None,
                events: Vec::new(),
            },
            CellOutcome::<f64> {
                cell: "bad".to_string(),
                attempts: 3,
                status: CellStatus::Failed,
                result: None,
                error: Some(JobError::Panic {
                    message: "\"boom\"\nline2".to_string(),
                }),
                events: vec![RuntimeEvent::Retry {
                    attempt: 2,
                    delay_ms: 0,
                    error_kind: "panic",
                }],
            },
            CellOutcome::<f64> {
                cell: "slow".to_string(),
                attempts: 1,
                status: CellStatus::Degraded {
                    reason: DegradeReason::Stalled,
                    last_durable_step: Some(9_000),
                },
                result: None,
                error: Some(JobError::Cancelled {
                    reason: DegradeReason::Stalled,
                    step: 9_500,
                }),
                events: Vec::new(),
            },
            CellOutcome {
                cell: "healed".to_string(),
                attempts: 2,
                status: CellStatus::Recovered,
                result: Some(2.5f64),
                error: None,
                events: Vec::new(),
            },
        ];
        let json = render_cell_report("test-report", &outcomes);
        assert!(json.contains("\"cells_failed\": 1"));
        assert!(json.contains("\"cells_degraded\": 1"));
        assert!(json.contains("\"cells_recovered\": 1"));
        assert!(json.contains("\"status\": \"degraded\""));
        assert!(json.contains("\"degrade_reason\": \"stalled\""));
        assert!(json.contains("\"last_durable_step\": 9000"));
        assert!(json.contains("\"status\": \"recovered\""));
        assert!(json.contains("ok\\\"cell"));
        // The typed error object carries kind, escaped message, and step.
        assert!(json.contains("\"error\": {\"kind\": \"panic\""));
        assert!(json.contains("\\\"boom\\\"\\nline2"));
        assert!(json.contains("\"kind\": \"cancelled\""));
        assert!(json.contains("\"step\": 9500"));
        // Events are embedded per cell.
        assert!(json.contains("\"event\": \"retry\""));
        assert!(json.contains("\"attempts\": 3"));
    }
}
