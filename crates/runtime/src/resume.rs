//! The `StdRng`-specialized resume seam.
//!
//! The chain-running entry points ([`crate::run_chain`],
//! [`sops_chains::run_supervised`]) are generic over `R: Rng +
//! SnapshotRng`, which is right for execution but awkward for callers
//! that need a *concrete* resume point before deciding what to run —
//! the job service's session table, the parallel-engine wiring that
//! ROADMAP item 3 calls out, and any tool that inspects checkpoints
//! without executing. This module recovers the newest valid snapshot
//! from a [`CheckpointStore`] and rebuilds the production RNG
//! ([`rand::rngs::StdRng`], xoshiro256++) directly from its 32-byte
//! state, so resumption is bit-identical by construction: same state
//! bytes, same RNG stream.

use rand::rngs::StdRng;
use sops_chains::checkpoint::{CheckpointStore, Recovery, StateCodec};

use crate::error::JobError;

/// A concrete resume point: the newest durable snapshot of a session,
/// with the RNG already rebuilt as the production [`StdRng`].
#[derive(Clone, Debug)]
pub struct ResumePoint<S> {
    /// Steps completed when the snapshot was taken.
    pub step: u64,
    /// Accepted (state-changing) steps at the snapshot.
    pub accepted: u64,
    /// The recovered chain state.
    pub state: S,
    /// The RNG positioned exactly where the snapshot left it.
    pub rng: StdRng,
    /// Observable log `(time, value)` recorded up to the snapshot.
    pub log: Vec<(u64, f64)>,
    /// Opaque sidecar payload (convergence-monitor decision state in
    /// adaptive runs, empty otherwise).
    pub aux: Vec<u8>,
    /// Corrupt snapshot files skipped during recovery.
    pub rejected: Vec<std::path::PathBuf>,
    /// Orphaned temp files reaped during recovery.
    pub reaped: Vec<std::path::PathBuf>,
}

/// Recovers the newest valid snapshot from `store` and rebuilds its RNG
/// as a concrete [`StdRng`]. Returns `Ok(None)` when the store holds no
/// recoverable snapshot (fresh session). Corrupt snapshots are skipped
/// (newest-first) and reported on the resume point, exactly as the
/// generic recovery path does.
///
/// # Errors
///
/// Returns [`JobError::Io`] for directory-level failures,
/// [`JobError::CorruptCheckpoint`] when the newest valid snapshot
/// carries an RNG state that is not the 32 bytes `StdRng` serializes,
/// and [`JobError::Cancelled`] when the store's cancel token fired.
pub fn resume_from_store<S: StateCodec>(
    store: &CheckpointStore,
) -> Result<Option<ResumePoint<S>>, JobError> {
    let Recovery {
        checkpoint,
        rejected,
        reaped,
    } = store.recover::<S>()?;
    let Some(ckpt) = checkpoint else {
        return Ok(None);
    };
    let bytes: [u8; 32] =
        ckpt.rng_state
            .as_slice()
            .try_into()
            .map_err(|_| JobError::CorruptCheckpoint {
                path: store.dir().display().to_string(),
                reason: format!(
                    "RNG state must be 32 bytes for StdRng, got {}",
                    ckpt.rng_state.len()
                ),
            })?;
    Ok(Some(ResumePoint {
        step: ckpt.step,
        accepted: ckpt.accepted,
        state: ckpt.state,
        rng: StdRng::from_state_bytes(bytes),
        log: ckpt.log,
        aux: ckpt.aux,
        rejected,
        reaped,
    }))
}

/// The step count of the newest snapshot *named* in `store`, read from
/// filenames alone — no payload is decoded or validated, so this is the
/// cheap telemetry-grade answer ("how far did this session durably
/// get?"), not a recovery decision. Use [`resume_from_store`] when the
/// snapshot must actually be loadable.
///
/// # Errors
///
/// Returns [`JobError::Io`] when the store directory cannot be listed.
pub fn last_durable_step(store: &CheckpointStore) -> Result<Option<u64>, JobError> {
    let mut newest = None;
    for path in store.list()? {
        let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        let Some(step) = name
            .strip_prefix("step-")
            .and_then(|d| d.parse::<u64>().ok())
        else {
            continue;
        };
        newest = newest.max(Some(step));
    }
    Ok(newest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng as _, SeedableRng as _};

    #[derive(Debug)]
    struct U64State(u64);

    impl StateCodec for U64State {
        fn encode_state(&self) -> Vec<u8> {
            self.0.to_le_bytes().to_vec()
        }

        fn decode_state(bytes: &[u8]) -> Result<Self, String> {
            let arr: [u8; 8] = bytes.try_into().map_err(|_| "want 8 bytes".to_string())?;
            Ok(U64State(u64::from_le_bytes(arr)))
        }
    }

    fn scratch(label: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sops-resume-{label}-{}", std::process::id()))
    }

    #[test]
    fn resume_point_rebuilds_identical_rng_stream() {
        let dir = scratch("stream");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        // Burn some of the stream so the snapshot is mid-sequence.
        for _ in 0..17 {
            let _: u64 = rng.next_u64();
        }
        store
            .save_parts(
                1_000,
                250,
                &rng.to_state_bytes(),
                &[(0, 0.0), (1_000, 0.5)],
                &U64State(7),
            )
            .unwrap();
        let expected: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();

        let point = resume_from_store::<U64State>(&store).unwrap().unwrap();
        assert_eq!(point.step, 1_000);
        assert_eq!(point.accepted, 250);
        assert_eq!(point.state.0, 7);
        assert_eq!(point.log.len(), 2);
        let mut resumed = point.rng;
        let got: Vec<u64> = (0..8).map(|_| resumed.next_u64()).collect();
        assert_eq!(got, expected, "resumed RNG must continue the same stream");
        assert_eq!(last_durable_step(&store).unwrap(), Some(1_000));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_store_resumes_to_none() {
        let dir = scratch("fresh");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir, 2).unwrap();
        assert!(resume_from_store::<U64State>(&store).unwrap().is_none());
        assert_eq!(last_durable_step(&store).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_width_rng_state_is_a_corrupt_checkpoint() {
        let dir = scratch("badrng");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir, 2).unwrap();
        store
            .save_parts(5, 1, &[0u8; 16], &[], &U64State(1))
            .unwrap();
        let err = resume_from_store::<U64State>(&store).unwrap_err();
        assert_eq!(err.kind(), "corrupt_checkpoint");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
