//! Resource-bounded supervision runtime for long-running sweeps.
//!
//! The paper's algorithm is fully local and asynchronous — progress under
//! arbitrary activation schedules. This crate holds the *host* to the same
//! standard: every experiment job runs under an explicit [`ResourceBudget`]
//! (wall-clock deadline, step cap, retry/rollback budgets, approximate
//! memory ceiling) with first-class cooperative cancellation
//! ([`CancelToken`], checked at chunk boundaries and inside checkpoint
//! I/O), per-job panic isolation, and deterministic graceful degradation:
//! when a budget trips, the job ends as
//! [`CellStatus::Degraded`]`{ reason, last_durable_step }` with a valid
//! durable checkpoint — never a wedge, never a lost sweep.
//!
//! The pieces, bottom to top:
//!
//! * [`JobError`] / [`DegradeReason`] — the typed failure taxonomy that
//!   replaces stringly statuses in `results/<bin>-cells.json`;
//! * [`RuntimeEvent`] — retry/repair/rollback/cancel/degrade events,
//!   rendered into the per-cell JSONL telemetry stream;
//! * [`BackoffPolicy`] — exponential retry delays, monotone non-decreasing
//!   up to the cap, with jitter deterministic per `(cell, attempt)`;
//! * [`StallPolicy`] + [`MonitorState`] — the stall watchdog's pure
//!   decision core (poll counting lives here so the poll/cancel race is
//!   testable with a fake clock) and the deadline enforcer;
//! * [`ResourceBudget`] — the budget a job runs under;
//! * [`SweepOptions`] — CLI parsing and per-cell checkpoint/telemetry
//!   plumbing shared by every sweep binary;
//! * [`Runtime`] / [`run_cells`] — parallel cell execution with
//!   `catch_unwind` isolation, retries, the watchdog, and typed outcomes;
//! * [`run_chain`] — the one chunk-loop every chain-driving bin shares:
//!   supervised (checkpointed, self-healing) when a store is configured,
//!   plain chunked execution otherwise, with budget checks either way;
//! * [`run_chain_monitored`] — the same loop under a
//!   [`ConvergenceMonitor`]: stops early with
//!   [`StopReason::Converged`] once the stopping rules hold, and
//!   serializes the monitor's decision state into the checkpoint sidecar
//!   so resumed runs replay to bit-identical stop decisions;
//! * [`resume_from_store`] / [`ResumePoint`] — the `StdRng`-specialized
//!   resume seam: recovers the newest valid snapshot and rebuilds the
//!   production RNG from its 32-byte state, for callers (the job
//!   service's session table, checkpoint inspection tools) that need a
//!   concrete resume point rather than a generic `R: Rng`.
//!
//! The recovery ladder itself ([`run_supervised`], [`Heartbeat`],
//! [`Repairable`]) lives in `sops-chains`; this crate re-exports it so
//! sweep code needs only one runtime dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backoff;
mod budget;
mod chain_job;
mod error;
mod events;
mod monitor;
mod options;
mod report;
mod resume;
mod runner;
mod seeds;

pub use backoff::BackoffPolicy;
pub use budget::ResourceBudget;
pub use chain_job::{run_chain, run_chain_monitored, ChainJob, StopReason};
pub use error::{ConfigError, DegradeReason, JobError};
pub use events::RuntimeEvent;
pub use monitor::{MonitorState, StallPolicy};
pub use options::{sanitize, SweepOptions};
pub use report::{render_cell_report, write_cell_report};
pub use resume::{last_durable_step, resume_from_store, ResumePoint};
pub use runner::{run_cells, CellOutcome, CellStatus, JobContext, Runtime};
pub use seeds::{seed_hash, seed_hash_attempt, seeded, seeded_attempt};

// The recovery primitives this runtime builds on, re-exported so callers
// need only `sops-runtime`.
pub use sops_chains::{
    run_supervised, CancelKind, CancelToken, CheckpointError, CheckpointStore, Heartbeat,
    RecoveryEvent, Repairable, SupervisedOptions, SupervisedRun,
};

// The convergence engine, re-exported for the same reason: sweep bins
// build their monitor rule stacks against `sops-runtime` alone.
pub use sops_chains::{
    CertificateRule, ConvergenceMonitor, Diagnostics, EssRule, PlateauRule, RHatRule, StoppingRule,
};
