//! Deterministic seed derivation for sweep cells and retry attempts.
//!
//! Moved here from `sops-bench` so the runtime (backoff jitter, retry
//! streams) and the experiment binaries derive seeds identically. The
//! hashes are frozen: attempt 1 must reproduce the legacy `(label,
//! replicate)` seed bit for bit, or published sweeps stop resuming.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The seed value [`seeded`] derives for `(label, replicate)` — FNV-1a of
/// the label XOR the replicate id. Exposed so run manifests can record the
/// exact seed a run started from.
#[must_use]
pub fn seed_hash(label: &str, replicate: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in label.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash ^ replicate
}

/// A deterministic RNG for experiment `label` with the given replicate id.
#[must_use]
pub fn seeded(label: &str, replicate: u64) -> StdRng {
    StdRng::seed_from_u64(seed_hash(label, replicate))
}

/// The seed for retry `attempt` of a cell (1-based; attempt 1 is the
/// first try). Attempt 1 reproduces [`seed_hash`] exactly, so resuming
/// and re-running published sweeps stays bitwise-stable; attempt ≥ 2
/// mixes the attempt id through a SplitMix64-style finalizer so a cell
/// that failed deterministically (e.g. a seed-dependent panic) draws a
/// genuinely different stream on retry instead of re-hitting the same
/// fault forever.
#[must_use]
pub fn seed_hash_attempt(label: &str, replicate: u64, attempt: u32) -> u64 {
    let base = seed_hash(label, replicate);
    if attempt <= 1 {
        return base;
    }
    let mut z = base ^ (u64::from(attempt)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic RNG for retry `attempt` of a cell; see
/// [`seed_hash_attempt`].
#[must_use]
pub fn seeded_attempt(label: &str, replicate: u64, attempt: u32) -> StdRng {
    StdRng::seed_from_u64(seed_hash_attempt(label, replicate, attempt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic_per_label() {
        use rand::RngExt as _;
        let a: u64 = seeded("x", 0).random();
        let b: u64 = seeded("x", 0).random();
        let c: u64 = seeded("y", 0).random();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn attempt_one_reproduces_the_legacy_seed() {
        assert_eq!(
            seed_hash_attempt("mixing-hit", 40, 1),
            seed_hash("mixing-hit", 40)
        );
        // Attempt 0 is treated as attempt 1 (defensive: attempts are
        // 1-based everywhere, but a 0 must not invent a new stream).
        assert_eq!(
            seed_hash_attempt("mixing-hit", 40, 0),
            seed_hash("mixing-hit", 40)
        );
    }

    #[test]
    fn retry_attempts_draw_a_different_stream() {
        use rand::RngExt as _;
        let draw = |attempt| -> Vec<u64> {
            let mut rng = seeded_attempt("separation", 42, attempt);
            (0..8).map(|_| rng.random()).collect()
        };
        let first = draw(1);
        let second = draw(2);
        let third = draw(3);
        assert_ne!(first, second, "attempt 2 must not replay attempt 1");
        assert_ne!(second, third, "every retry gets its own stream");
        // And the derivation is stable run-to-run.
        assert_eq!(second, draw(2));
    }
}
