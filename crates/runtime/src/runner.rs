//! The cell runner: parallel, panic-isolated, budget-bounded execution
//! of labelled sweep cells.
//!
//! [`Runtime::run_cells`] runs one labelled cell per job in parallel,
//! isolating each behind `catch_unwind`, retrying typed failures with
//! [`crate::BackoffPolicy`] delays, and — when configured — running a
//! monitor thread that enforces the stall watchdog and the sweep-wide
//! wall-clock deadline of the [`ResourceBudget`]. Every cell ends in a
//! classified [`CellStatus`]; a budget trip degrades the cell
//! deterministically instead of wedging or killing the sweep.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sops_chains::{CancelKind, CancelToken, Heartbeat, RecoveryEvent, SupervisedRun};

use crate::budget::ResourceBudget;
use crate::error::{DegradeReason, JobError};
use crate::events::RuntimeEvent;
use crate::monitor::{MonitorState, StallPolicy};
use crate::options::SweepOptions;

/// Per-cell status in the sweep report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellStatus {
    /// Succeeded first try with no recovery events.
    Ok,
    /// Succeeded, but only after repair, rollback, or a retry attempt.
    Recovered,
    /// A budget tripped, the watchdog fired, or the caller cancelled; the
    /// cell exited at a safe point, a partial result may be present, and
    /// `last_durable_step` names the newest valid checkpoint (if any).
    Degraded {
        /// Why the cell degraded.
        reason: DegradeReason,
        /// The newest durable checkpoint step, when one was persisted.
        last_durable_step: Option<u64>,
    },
    /// Exhausted all attempts without producing a result.
    Failed,
}

impl CellStatus {
    /// The status as it appears in `results/<bin>-cells.json`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Recovered => "recovered",
            CellStatus::Degraded { .. } => "degraded",
            CellStatus::Failed => "failed",
        }
    }
}

/// Monitor-reason encoding shared between the monitor thread and the
/// workers via [`CellSlot::reason`]: the monitor records *why* it
/// cancelled before it flips any token, so workers can classify the
/// degradation without guessing.
const REASON_NONE: u8 = 0;
const REASON_STALLED: u8 = 1;
const REASON_DEADLINE: u8 = 2;

fn observed_cancel_reason(reason: &AtomicU8, heartbeat: &Heartbeat) -> DegradeReason {
    match reason.load(Ordering::SeqCst) {
        REASON_STALLED => DegradeReason::Stalled,
        REASON_DEADLINE => DegradeReason::DeadlineExceeded,
        _ => match heartbeat.cancel_kind() {
            Some(CancelKind::Stalled) => DegradeReason::Stalled,
            _ => DegradeReason::ExternalCancel,
        },
    }
}

/// Per-attempt context handed to a cell's work function by
/// [`Runtime::run_cells`].
///
/// Carries the attempt number (for `seeded_attempt` seed derivation), the
/// cell's shared [`Heartbeat`] (beat it from long loops so the stall
/// watchdog sees progress; check `is_cancelled` to exit early), the
/// [`ResourceBudget`] the cell runs under, and the channels through which
/// the cell reports recovery, degradation, and [`RuntimeEvent`]s.
pub struct JobContext<'a> {
    /// 1-based attempt number (1 = first try).
    pub attempt: u32,
    /// The cell's heartbeat, shared with the monitor thread.
    pub heartbeat: &'a Heartbeat,
    budget: ResourceBudget,
    started: Instant,
    monitor_reason: &'a AtomicU8,
    recovered: AtomicBool,
    degraded: Mutex<Option<(DegradeReason, Option<u64>)>>,
    events: Mutex<Vec<RuntimeEvent>>,
}

impl<'a> JobContext<'a> {
    fn new(
        attempt: u32,
        heartbeat: &'a Heartbeat,
        budget: ResourceBudget,
        started: Instant,
        monitor_reason: &'a AtomicU8,
        pending: Vec<RuntimeEvent>,
    ) -> Self {
        JobContext {
            attempt,
            heartbeat,
            budget,
            started,
            monitor_reason,
            recovered: AtomicBool::new(false),
            degraded: Mutex::new(None),
            events: Mutex::new(pending),
        }
    }

    /// The resource budget this cell runs under.
    #[must_use]
    pub fn budget(&self) -> ResourceBudget {
        self.budget
    }

    /// A clone of the cell's cancellation token, for threading into
    /// checkpoint stores (`CheckpointStore::with_cancel`) or other
    /// cooperative consumers.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.heartbeat.token()
    }

    /// Whether the budget's wall-clock deadline (measured from
    /// [`Runtime::run_cells`] start) has elapsed.
    #[must_use]
    pub fn deadline_exceeded(&self) -> bool {
        self.budget.deadline_exceeded(self.started.elapsed())
    }

    /// Marks the cell as having recovered from a fault (repair or
    /// rollback); a successful cell then reports `recovered`, not `ok`.
    pub fn note_recovered(&self) {
        self.recovered.store(true, Ordering::Relaxed);
    }

    /// Marks the cell as degraded. The first reason wins; later calls are
    /// ignored so the trigger is reported, not the aftershocks.
    pub fn note_degraded(&self, reason: DegradeReason, last_durable_step: Option<u64>) {
        let mut slot = self.degraded.lock().expect("degraded lock");
        if slot.is_none() {
            *slot = Some((reason, last_durable_step));
            drop(slot);
            self.emit(RuntimeEvent::Degraded {
                reason,
                last_durable_step,
            });
        }
    }

    /// The recorded degradation, if any.
    #[must_use]
    pub fn degraded(&self) -> Option<(DegradeReason, Option<u64>)> {
        *self.degraded.lock().expect("degraded lock")
    }

    /// Records a [`RuntimeEvent`] on this cell's trace.
    pub fn emit(&self, event: RuntimeEvent) {
        self.events.lock().expect("events lock").push(event);
    }

    /// The JSONL telemetry lines for every event recorded so far
    /// (non-destructive) — flush these into the cell's telemetry sink.
    #[must_use]
    pub fn event_lines(&self) -> Vec<String> {
        self.events
            .lock()
            .expect("events lock")
            .iter()
            .map(RuntimeEvent::telemetry_line)
            .collect()
    }

    fn take_events(&self) -> Vec<RuntimeEvent> {
        std::mem::take(&mut *self.events.lock().expect("events lock"))
    }

    /// Why this cell was cancelled: the monitor's recorded reason when it
    /// made the call, otherwise inferred from the heartbeat's cancel kind.
    #[must_use]
    pub fn cancel_reason(&self) -> DegradeReason {
        observed_cancel_reason(self.monitor_reason, self.heartbeat)
    }

    /// Folds a [`SupervisedRun`]'s ladder events into this cell's trace
    /// and status flags: repairs/rollbacks mark the cell recovered, and a
    /// run cut short by cancellation marks it degraded with the observed
    /// reason and its last durable checkpoint. (A run the *caller* broke
    /// out of via `on_chunk` is not degraded — that is the caller's
    /// successful early exit.)
    pub fn absorb(&self, run: &SupervisedRun) {
        for event in &run.events {
            match event {
                RecoveryEvent::Repaired { step, .. } => {
                    self.emit(RuntimeEvent::Repaired { step: *step });
                }
                RecoveryEvent::RolledBack {
                    from_step, to_step, ..
                } => {
                    self.emit(RuntimeEvent::RolledBack {
                        from_step: *from_step,
                        to_step: *to_step,
                    });
                }
                RecoveryEvent::Cancelled { step } => {
                    let kind = self.heartbeat.cancel_kind().unwrap_or(CancelKind::External);
                    self.emit(RuntimeEvent::Cancelled { step: *step, kind });
                }
            }
        }
        if run.recovered() {
            self.note_recovered();
        }
        if !run.completed && self.heartbeat.is_cancelled() {
            self.note_degraded(self.cancel_reason(), run.last_durable_step);
        }
    }
}

/// The outcome of one supervised sweep cell.
#[derive(Clone, Debug)]
pub struct CellOutcome<T> {
    /// The cell's label (e.g. `"gamma=4.0"`).
    pub cell: String,
    /// Attempts used (1 = first try succeeded).
    pub attempts: u32,
    /// How the cell ended.
    pub status: CellStatus,
    /// The cell's value when it produced one.
    pub result: Option<T>,
    /// The final typed failure otherwise.
    pub error: Option<JobError>,
    /// Every [`RuntimeEvent`] recorded across the cell's attempts.
    pub events: Vec<RuntimeEvent>,
}

impl<T> CellOutcome<T> {
    /// Whether the cell produced a result.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.result.is_some()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string payload>".to_string()
    }
}

/// Book-keeping shared between a cell's worker thread and the monitor.
struct CellSlot {
    heartbeat: Heartbeat,
    done: AtomicBool,
    reason: AtomicU8,
}

/// The supervision runtime: executes labelled jobs under a shared
/// [`ResourceBudget`] with panic isolation, typed failures, retries, the
/// stall watchdog, a sweep-wide deadline, and a root [`CancelToken`] for
/// external cancellation.
pub struct Runtime {
    opts: SweepOptions,
    root: CancelToken,
}

impl Runtime {
    /// A runtime over explicit options.
    #[must_use]
    pub fn new(opts: SweepOptions) -> Self {
        Runtime {
            opts,
            root: CancelToken::new(),
        }
    }

    /// A runtime configured from the process arguments
    /// ([`SweepOptions::from_args`]).
    #[must_use]
    pub fn from_args() -> Self {
        Self::new(SweepOptions::from_args())
    }

    /// The options this runtime executes under.
    #[must_use]
    pub fn options(&self) -> &SweepOptions {
        &self.opts
    }

    /// The root cancellation token every cell's heartbeat shares.
    /// Cancelling it stops the whole sweep cooperatively: each cell exits
    /// at its next safe point and reports
    /// [`CellStatus::Degraded`] with [`DegradeReason::ExternalCancel`].
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.root.clone()
    }

    /// Runs one labelled cell per job in parallel, isolating each behind
    /// `catch_unwind`, retrying typed failures up to
    /// `budget.max_retries` extra times with [`crate::BackoffPolicy`]
    /// delays, and — when a stall policy or deadline is configured —
    /// monitoring every cell's [`Heartbeat`].
    ///
    /// A cell fails by returning `Err` *or* by panicking; either way the
    /// other cells are unaffected and the failure lands typed in the
    /// outcome rather than propagating. A stalled cell is cancelled
    /// cooperatively and reported degraded — it is not retried, since a
    /// hang would recur and hold the sweep hostage again. When the
    /// budget's deadline elapses, every live cell is cancelled and
    /// reported [`DegradeReason::DeadlineExceeded`]; retries whose
    /// backoff would sleep past the deadline are skipped the same way.
    pub fn run_cells<L, T, F>(&self, labels: Vec<L>, work: F) -> Vec<CellOutcome<T>>
    where
        L: fmt::Display + Send + Sync,
        T: Send,
        F: Fn(&L, &JobContext<'_>) -> Result<T, JobError> + Sync,
    {
        let started = Instant::now();
        let n = labels.len();
        let slots: Vec<Arc<CellSlot>> = (0..n)
            .map(|_| {
                Arc::new(CellSlot {
                    heartbeat: Heartbeat::with_token(self.root.clone()),
                    done: AtomicBool::new(false),
                    reason: AtomicU8::new(REASON_NONE),
                })
            })
            .collect();
        let cells: Vec<String> = labels.iter().map(ToString::to_string).collect();

        let mut outcomes: Vec<Option<CellOutcome<T>>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let work = &work;
            let opts_ref = &self.opts;
            let mut handles = Vec::new();
            for (i, label) in labels.iter().enumerate() {
                let slot = Arc::clone(&slots[i]);
                let cell = cells[i].clone();
                handles.push(scope.spawn(move || {
                    let outcome = run_one_cell(label, &cell, &slot, opts_ref, started, work);
                    slot.done.store(true, Ordering::SeqCst);
                    (i, outcome)
                }));
            }

            if self.opts.stall.is_some() || self.opts.budget.deadline.is_some() {
                let slots = &slots;
                let cells = &cells;
                let root = &self.root;
                let stall = self.opts.stall;
                let deadline = self.opts.budget.deadline;
                scope.spawn(move || monitor(slots, cells, root, stall, deadline, started));
            }

            for h in handles {
                let (i, outcome) = h.join().expect("cell worker panicked outside catch_unwind");
                outcomes[i] = Some(outcome);
            }
        });
        outcomes
            .into_iter()
            .map(|o| o.expect("every cell reports an outcome"))
            .collect()
    }
}

/// Runs labelled cells under a one-shot [`Runtime`]; the convenience
/// entry point for binaries that never need the root token.
pub fn run_cells<L, T, F>(labels: Vec<L>, opts: &SweepOptions, work: F) -> Vec<CellOutcome<T>>
where
    L: fmt::Display + Send + Sync,
    T: Send,
    F: Fn(&L, &JobContext<'_>) -> Result<T, JobError> + Sync,
{
    Runtime::new(opts.clone()).run_cells(labels, work)
}

/// The monitor thread: enforces the sweep deadline and the stall
/// watchdog over every live cell's heartbeat. Exits once every cell is
/// done.
///
/// Stall detection is two-phase to close the poll/cancel race: the pure
/// [`MonitorState`] counts frozen polls, and its verdict is confirmed
/// against the live heartbeat with `cancel_if_stalled_at`, which refuses
/// to kill a cell that advanced after the poll.
fn monitor(
    slots: &[Arc<CellSlot>],
    cells: &[String],
    root: &CancelToken,
    stall: Option<StallPolicy>,
    deadline: Option<Duration>,
    started: Instant,
) {
    // The deadline needs finer resolution than a typical stall poll, so
    // the loop ticks fast when a deadline is armed and re-checks the
    // stall counters only on the configured poll cadence.
    let tick_ms = match (stall, deadline) {
        (Some(s), None) => s.poll_ms,
        (Some(s), Some(_)) => s.poll_ms.min(25),
        (None, _) => 25,
    };
    let mut mon = stall.map(|s| MonitorState::new(slots.len(), s.stall_after));
    let mut last_stall_poll = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(tick_ms));
        if slots.iter().all(|s| s.done.load(Ordering::SeqCst)) {
            return;
        }
        if let Some(d) = deadline {
            if started.elapsed() >= d && !root.is_cancelled() {
                // Record the reason on every live slot *before* flipping
                // the token, so workers observing the cancel can already
                // classify it.
                for slot in slots {
                    if !slot.done.load(Ordering::SeqCst) {
                        let _ = slot.reason.compare_exchange(
                            REASON_NONE,
                            REASON_DEADLINE,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        );
                    }
                }
                eprintln!("sweep deadline ({d:?}) elapsed; cancelling remaining cells");
                root.cancel();
            }
        }
        if let (Some(policy), Some(mon)) = (stall, mon.as_mut()) {
            if last_stall_poll.elapsed() >= Duration::from_millis(policy.poll_ms) {
                last_stall_poll = Instant::now();
                let observed: Vec<(u64, bool)> = slots
                    .iter()
                    .map(|s| {
                        (
                            s.heartbeat.steps(),
                            s.done.load(Ordering::SeqCst) || s.heartbeat.is_cancelled(),
                        )
                    })
                    .collect();
                for (i, expected) in mon.poll(&observed) {
                    // Confirm against the live heartbeat: a cell that
                    // advanced since the poll is spared.
                    if slots[i].heartbeat.cancel_if_stalled_at(expected) {
                        let _ = slots[i].reason.compare_exchange(
                            REASON_NONE,
                            REASON_STALLED,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        );
                        eprintln!(
                            "cell {}: no progress past step {expected}; cancelling as stalled",
                            cells[i]
                        );
                    }
                }
            }
        }
    }
}

fn ensure_degraded_event(
    events: &mut Vec<RuntimeEvent>,
    reason: DegradeReason,
    last_durable_step: Option<u64>,
) {
    if !events
        .iter()
        .any(|e| matches!(e, RuntimeEvent::Degraded { .. }))
    {
        events.push(RuntimeEvent::Degraded {
            reason,
            last_durable_step,
        });
    }
}

fn run_one_cell<L, T, F>(
    label: &L,
    cell: &str,
    slot: &CellSlot,
    opts: &SweepOptions,
    started: Instant,
    work: &F,
) -> CellOutcome<T>
where
    L: fmt::Display,
    F: Fn(&L, &JobContext<'_>) -> Result<T, JobError>,
{
    let max_attempts = opts.budget.max_retries.saturating_add(1);
    let mut attempts: u32 = 0;
    // Assigned on every loop iteration before it is read; no initializer
    // keeps the flow analysis honest about that.
    let mut last_error: Option<JobError>;
    let mut recovered_any = false;
    let mut degraded_any: Option<(DegradeReason, Option<u64>)> = None;
    let mut all_events: Vec<RuntimeEvent> = Vec::new();
    let mut pending: Vec<RuntimeEvent> = Vec::new();
    loop {
        attempts += 1;
        let ctx = JobContext::new(
            attempts,
            &slot.heartbeat,
            opts.budget,
            started,
            &slot.reason,
            std::mem::take(&mut pending),
        );
        let result = catch_unwind(AssertUnwindSafe(|| work(label, &ctx)));
        recovered_any |= ctx.recovered.load(Ordering::Relaxed);
        if degraded_any.is_none() {
            degraded_any = ctx.degraded();
        }
        let cancelled = slot.heartbeat.is_cancelled();
        all_events.extend(ctx.take_events());
        match result {
            Ok(Ok(value)) => {
                let degrade = degraded_any.or_else(|| {
                    cancelled.then(|| (observed_cancel_reason(&slot.reason, &slot.heartbeat), None))
                });
                let status = match degrade {
                    Some((reason, last_durable_step)) => {
                        ensure_degraded_event(&mut all_events, reason, last_durable_step);
                        CellStatus::Degraded {
                            reason,
                            last_durable_step,
                        }
                    }
                    None if recovered_any || attempts > 1 => CellStatus::Recovered,
                    None => CellStatus::Ok,
                };
                return CellOutcome {
                    cell: cell.to_string(),
                    attempts,
                    status,
                    result: Some(value),
                    error: None,
                    events: all_events,
                };
            }
            Ok(Err(e)) => last_error = Some(e),
            Err(payload) => {
                last_error = Some(JobError::Panic {
                    message: panic_message(payload),
                });
            }
        }
        if let Some(e) = &last_error {
            eprintln!("cell {cell}: attempt {attempts} failed: {e}");
        }
        if cancelled || degraded_any.is_some() || attempts >= max_attempts {
            break;
        }
        let next = attempts + 1;
        let delay = opts.backoff.delay(cell, next);
        if let Some(deadline) = opts.budget.deadline {
            // Never sleep past the deadline: degrade instead of retrying.
            if started.elapsed().saturating_add(delay) >= deadline {
                degraded_any.get_or_insert((DegradeReason::DeadlineExceeded, None));
                break;
            }
        }
        pending.push(RuntimeEvent::Retry {
            attempt: next,
            delay_ms: u64::try_from(delay.as_millis()).unwrap_or(u64::MAX),
            error_kind: last_error.as_ref().map_or("app", JobError::kind),
        });
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }
    let degrade = degraded_any.or_else(|| {
        slot.heartbeat
            .is_cancelled()
            .then(|| (observed_cancel_reason(&slot.reason, &slot.heartbeat), None))
    });
    match degrade {
        Some((reason, last_durable_step)) => {
            ensure_degraded_event(&mut all_events, reason, last_durable_step);
            CellOutcome {
                cell: cell.to_string(),
                attempts,
                status: CellStatus::Degraded {
                    reason,
                    last_durable_step,
                },
                result: None,
                error: Some(last_error.unwrap_or(JobError::Cancelled {
                    reason,
                    step: slot.heartbeat.steps(),
                })),
                events: all_events,
            }
        }
        None => CellOutcome {
            cell: cell.to_string(),
            attempts,
            status: CellStatus::Failed,
            result: None,
            error: Some(last_error.unwrap_or_else(|| JobError::app("unknown failure"))),
            events: all_events,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BackoffPolicy;

    /// Options with zero backoff so retry tests don't sleep.
    fn fast_opts(retries: u32) -> SweepOptions {
        SweepOptions {
            backoff: BackoffPolicy {
                base_ms: 0,
                cap_ms: 0,
            },
            budget: ResourceBudget {
                max_retries: retries,
                ..ResourceBudget::default()
            },
            ..SweepOptions::default()
        }
    }

    #[test]
    fn run_cells_isolates_panics_and_retries() {
        use std::sync::atomic::AtomicU32;
        let calls = AtomicU32::new(0);
        let outcomes = run_cells(vec!["a", "b", "c"], &fast_opts(1), |label, ctx| {
            calls.fetch_add(1, Ordering::SeqCst);
            match *label {
                "a" => Ok(10),
                // Fails once, succeeds on retry.
                "b" if ctx.attempt == 1 => Err(JobError::app("transient")),
                "b" => Ok(20),
                _ => panic!("cell c always dies"),
            }
        });
        let by_cell = |name: &str| outcomes.iter().find(|o| o.cell == name).unwrap();
        assert_eq!(by_cell("a").result, Some(10));
        assert_eq!(by_cell("a").attempts, 1);
        assert_eq!(by_cell("a").status, CellStatus::Ok);
        assert!(by_cell("a").events.is_empty());
        assert_eq!(by_cell("b").result, Some(20));
        assert_eq!(by_cell("b").attempts, 2);
        assert_eq!(by_cell("b").status, CellStatus::Recovered);
        // The retry is on the trace, with the typed trigger.
        assert!(matches!(
            by_cell("b").events[..],
            [RuntimeEvent::Retry {
                attempt: 2,
                error_kind: "app",
                ..
            }]
        ));
        assert!(by_cell("c").result.is_none());
        assert_eq!(by_cell("c").attempts, 2);
        assert_eq!(by_cell("c").status, CellStatus::Failed);
        let err = by_cell("c").error.as_ref().unwrap();
        assert_eq!(err.kind(), "panic");
        assert!(err.to_string().contains("always dies"));
        // a(1) + b(2) + c(2)
        assert_eq!(calls.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn ladder_recovery_reports_recovered_status() {
        let outcomes = run_cells(vec!["x"], &fast_opts(0), |_, ctx| {
            // The cell repaired itself internally (as run_supervised
            // reports through JobContext::absorb).
            ctx.note_recovered();
            Ok(1)
        });
        assert_eq!(outcomes[0].status, CellStatus::Recovered);
        assert_eq!(outcomes[0].attempts, 1);
    }

    #[test]
    fn watchdog_cancels_stalled_cells_and_marks_them_degraded() {
        let opts = SweepOptions {
            stall: Some(StallPolicy {
                poll_ms: 10,
                stall_after: 3,
            }),
            ..fast_opts(2)
        };
        let outcomes = run_cells(vec!["healthy", "stuck"], &opts, |label, ctx| {
            if *label == "healthy" {
                for step in 0..20u64 {
                    ctx.heartbeat.beat(step);
                    std::thread::sleep(Duration::from_millis(2));
                }
                return Ok("done".to_string());
            }
            // The stuck cell never beats; it cooperatively polls for
            // cancellation like run_supervised does at chunk boundaries.
            loop {
                if ctx.heartbeat.is_cancelled() {
                    return Err(JobError::Cancelled {
                        reason: ctx.cancel_reason(),
                        step: ctx.heartbeat.steps(),
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let by_cell = |name: &str| outcomes.iter().find(|o| o.cell == name).unwrap();
        assert_eq!(by_cell("healthy").status, CellStatus::Ok);
        let stuck = by_cell("stuck");
        assert_eq!(
            stuck.status,
            CellStatus::Degraded {
                reason: DegradeReason::Stalled,
                last_durable_step: None,
            }
        );
        // A stall is not retried: retries were 2, but one attempt ran.
        assert_eq!(stuck.attempts, 1);
        assert_eq!(stuck.error.as_ref().unwrap().kind(), "cancelled");
        // The degradation is on the event trace too.
        assert!(stuck
            .events
            .iter()
            .any(|e| matches!(e, RuntimeEvent::Degraded { .. })));
    }

    #[test]
    fn external_cancel_degrades_cells_without_retry() {
        let rt = Runtime::new(fast_opts(3));
        rt.cancel_token().cancel();
        let outcomes: Vec<CellOutcome<u32>> = rt.run_cells(vec!["cell"], |_, ctx| {
            assert!(ctx.heartbeat.is_cancelled());
            Ok(7)
        });
        assert_eq!(outcomes[0].attempts, 1);
        assert_eq!(outcomes[0].result, Some(7));
        assert_eq!(
            outcomes[0].status,
            CellStatus::Degraded {
                reason: DegradeReason::ExternalCancel,
                last_durable_step: None,
            }
        );
    }

    #[test]
    fn deadline_cancels_long_cells_deterministically() {
        let opts = SweepOptions {
            budget: ResourceBudget {
                deadline: Some(Duration::from_millis(60)),
                ..ResourceBudget::default()
            },
            ..fast_opts(0)
        };
        let outcomes = run_cells(vec!["quick", "slow"], &opts, |label, ctx| {
            if *label == "quick" {
                return Ok(0u64);
            }
            for step in 0..5_000u64 {
                ctx.heartbeat.beat(step);
                if ctx.heartbeat.is_cancelled() {
                    return Ok(step);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Ok(5_000)
        });
        let by_cell = |name: &str| outcomes.iter().find(|o| o.cell == name).unwrap();
        assert_eq!(by_cell("quick").status, CellStatus::Ok);
        let slow = by_cell("slow");
        assert!(slow.result.is_some());
        assert!(
            matches!(
                slow.status,
                CellStatus::Degraded {
                    reason: DegradeReason::DeadlineExceeded,
                    ..
                }
            ),
            "{:?}",
            slow.status
        );
    }

    #[test]
    fn retries_never_sleep_past_the_deadline() {
        // Backoff of ~4s against a 50ms deadline: the retry is refused
        // and the cell degrades instead of sleeping through the budget.
        let opts = SweepOptions {
            backoff: BackoffPolicy {
                base_ms: 4_000,
                cap_ms: 10_000,
            },
            budget: ResourceBudget {
                deadline: Some(Duration::from_millis(50)),
                max_retries: 5,
                ..ResourceBudget::default()
            },
            ..SweepOptions::default()
        };
        let started = Instant::now();
        let outcomes: Vec<CellOutcome<u32>> =
            run_cells(vec!["cell"], &opts, |_, _| Err(JobError::app("flaky")));
        assert!(started.elapsed() < Duration::from_secs(2));
        assert_eq!(outcomes[0].attempts, 1);
        assert!(matches!(
            outcomes[0].status,
            CellStatus::Degraded {
                reason: DegradeReason::DeadlineExceeded,
                ..
            }
        ));
        // The underlying app error is preserved as the terminal failure.
        assert_eq!(outcomes[0].error.as_ref().unwrap().kind(), "app");
    }
}
