//! [`SweepOptions`] — the CLI surface and per-cell plumbing shared by
//! every sweep binary.
//!
//! Flags ([`SweepOptions::from_args`]): `--checkpoint-dir DIR` persists
//! per-cell snapshots there, `--resume` continues from them (without it a
//! fresh run clears stale cell state), `--audit-every N` re-verifies
//! configuration invariants from scratch every `N` steps, `--retries K`
//! bounds per-cell retry attempts, `--backoff-ms B` sets the base retry
//! backoff, `--stall-ms S` arms the stall watchdog, `--no-telemetry`
//! suppresses the per-cell JSONL metric streams, `--adaptive` runs cells
//! under the streaming convergence engine (stop when mixed instead of
//! burning the full budget), `--smoke` (or env `SOPS_BENCH_SMOKE=1`)
//! shrinks grids and budgets for CI, `--threads T` selects
//! the sharded parallel proposal engine (`sops-core`'s
//! `SeparationChain::run_parallel`) with `T` worker threads per cell
//! (`1`, the default, keeps the sequential kernel), and the
//! [`crate::ResourceBudget`] flags: `--deadline-ms D` caps the sweep's
//! wall-clock time, `--max-steps N` caps chain steps per cell,
//! `--max-rollbacks R` bounds the recovery ladder, `--memory-mb M` sets
//! the approximate memory ceiling that sizes checkpoint retention and
//! telemetry rings.

use std::path::{Path, PathBuf};

use sops_chains::{CheckpointError, CheckpointStore, JsonlSink, RunManifest};

use crate::backoff::BackoffPolicy;
use crate::budget::ResourceBudget;
use crate::error::ConfigError;
use crate::monitor::StallPolicy;

/// Runtime options shared by every sweep binary.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepOptions {
    /// Where to persist per-cell checkpoints; `None` disables snapshots.
    pub checkpoint_dir: Option<PathBuf>,
    /// Whether to resume from existing snapshots instead of starting over.
    pub resume: bool,
    /// Re-audit configuration invariants every this many steps.
    pub audit_every: Option<u64>,
    /// How many snapshots each cell retains (further reduced by the
    /// budget's memory ceiling — see
    /// [`ResourceBudget::checkpoint_retention`]).
    pub retain: usize,
    /// Whether to emit per-cell JSONL telemetry streams.
    pub telemetry: bool,
    /// Delay schedule between retry attempts.
    pub backoff: BackoffPolicy,
    /// Stall watchdog configuration; `None` disables the watchdog.
    pub stall: Option<StallPolicy>,
    /// The resource envelope every cell runs within.
    pub budget: ResourceBudget,
    /// Worker threads for the sharded parallel proposal engine; `1` keeps
    /// the sequential kernel. Changing this changes the proposal schedule,
    /// so trajectories are only reproducible for a fixed thread count.
    pub threads: usize,
    /// Whether to run cells under the adaptive convergence engine
    /// (`--adaptive`): streaming stopping rules end a cell as soon as its
    /// observable has demonstrably settled instead of burning the full
    /// step budget, and convergence diagnostics land in the cells report.
    pub adaptive: bool,
    /// Smoke mode (`--smoke` or `SOPS_BENCH_SMOKE=1` via
    /// [`SweepOptions::from_args`]): shrink grids and budgets for CI.
    pub smoke: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            checkpoint_dir: None,
            resume: false,
            audit_every: None,
            retain: 3,
            telemetry: true,
            backoff: BackoffPolicy::default(),
            stall: None,
            budget: ResourceBudget::default(),
            threads: 1,
            adaptive: false,
            smoke: false,
        }
    }
}

impl SweepOptions {
    /// Parses the process arguments. Unknown flags are reported to stderr
    /// and ignored, so binaries stay usable from wrapper scripts that pass
    /// extra context. A rejected value or combination (see
    /// [`SweepOptions::try_parse`]) prints the typed error and exits with
    /// status 2 — a sweep that could never produce a result must not start.
    #[must_use]
    pub fn from_args() -> Self {
        let mut opts = match Self::try_parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(e) => {
                eprintln!("invalid configuration ({}): {e}", e.code());
                std::process::exit(2);
            }
        };
        // The CI smoke legs select smoke mode via the environment; the
        // flag exists so local runs can do the same without exporting.
        if std::env::var("SOPS_BENCH_SMOKE").is_ok_and(|v| v == "1") {
            opts.smoke = true;
        }
        opts
    }

    /// Parses an argument list into options, rejecting malformed values
    /// and nonsensical budget combinations with a typed [`ConfigError`]
    /// instead of letting them pass through silently: `--deadline-ms 0`,
    /// `--retries N` with `--max-rollbacks 0`, and a `--memory-mb`
    /// ceiling smaller than one checkpoint snapshot are all configuration
    /// bugs, not requests. Unknown flags are still reported to stderr and
    /// ignored. Combination checks run after the whole list is consumed,
    /// so flag order never matters.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] encountered.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Self, ConfigError> {
        fn parsed<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, ConfigError> {
            value.parse().map_err(|_| ConfigError::InvalidValue {
                flag: flag.to_string(),
                value: value.to_string(),
            })
        }
        let mut opts = SweepOptions::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut take_value = |flag: &str| {
                args.next().ok_or_else(|| ConfigError::MissingValue {
                    flag: flag.to_string(),
                })
            };
            match arg.as_str() {
                "--checkpoint-dir" => {
                    opts.checkpoint_dir = Some(PathBuf::from(take_value("--checkpoint-dir")?));
                }
                "--resume" => opts.resume = true,
                "--audit-every" => {
                    let v = take_value("--audit-every")?;
                    opts.audit_every = Some(parsed("--audit-every", &v)?);
                }
                "--retries" => {
                    let v = take_value("--retries")?;
                    opts.budget.max_retries = parsed("--retries", &v)?;
                }
                "--backoff-ms" => {
                    let v = take_value("--backoff-ms")?;
                    opts.backoff.base_ms = parsed("--backoff-ms", &v)?;
                }
                "--stall-ms" => {
                    let v = take_value("--stall-ms")?;
                    let total: u64 = parsed("--stall-ms", &v)?;
                    opts.stall = Some(StallPolicy::with_timeout_ms(total));
                }
                "--deadline-ms" => {
                    let v = take_value("--deadline-ms")?;
                    let ms: u64 = parsed("--deadline-ms", &v)?;
                    opts.budget.deadline = Some(std::time::Duration::from_millis(ms));
                }
                "--max-steps" => {
                    let v = take_value("--max-steps")?;
                    opts.budget.max_steps = Some(parsed("--max-steps", &v)?);
                }
                "--max-rollbacks" => {
                    let v = take_value("--max-rollbacks")?;
                    opts.budget.max_rollbacks = parsed("--max-rollbacks", &v)?;
                }
                "--memory-mb" => {
                    let v = take_value("--memory-mb")?;
                    let mb: u64 = parsed("--memory-mb", &v)?;
                    opts.budget.memory_ceiling_bytes = Some(mb * 1024 * 1024);
                }
                "--threads" => {
                    let v = take_value("--threads")?;
                    let threads: usize = parsed("--threads", &v)?;
                    if threads == 0 {
                        return Err(ConfigError::InvalidValue {
                            flag: "--threads".to_string(),
                            value: v,
                        });
                    }
                    opts.threads = threads;
                }
                "--adaptive" => opts.adaptive = true,
                "--smoke" => opts.smoke = true,
                "--no-telemetry" => opts.telemetry = false,
                other => eprintln!("ignoring unknown flag {other:?}"),
            }
        }
        opts.budget.validate()?;
        Ok(opts)
    }

    #[cfg(test)]
    pub(crate) fn parse(args: impl IntoIterator<Item = String>) -> Self {
        Self::try_parse(args).expect("valid test flags")
    }

    /// Opens the checkpoint store for one named sweep cell, or `None` when
    /// checkpointing is disabled. Without `--resume`, any stale snapshots
    /// for the cell are cleared first so the run starts from scratch. The
    /// retention count is `retain` clamped by the budget's memory ceiling.
    ///
    /// # Errors
    ///
    /// Returns an error when the cell directory cannot be prepared.
    pub fn store_for(&self, cell: &str) -> Result<Option<CheckpointStore>, CheckpointError> {
        let Some(dir) = &self.checkpoint_dir else {
            return Ok(None);
        };
        let cell_dir = dir.join(sanitize(cell));
        if !self.resume && cell_dir.exists() {
            std::fs::remove_dir_all(&cell_dir)?;
        }
        let retain = self.budget.checkpoint_retention(self.retain);
        CheckpointStore::open(cell_dir, retain).map(Some)
    }

    /// Opens the JSONL telemetry sink for one sweep cell at
    /// `<logs_dir>/<bin>-<cell>.telemetry.jsonl`, or `None` when telemetry
    /// is disabled via `--no-telemetry`.
    ///
    /// On a resumed run (`--resume` with `resumed_at`), an existing stream
    /// for the cell is appended to — the sink records a `resumed` marker —
    /// so one file holds the cell's full history across restarts. Otherwise
    /// the stream is recreated from scratch with a fresh manifest line.
    ///
    /// # Errors
    ///
    /// Returns an error when the log file cannot be created or appended.
    pub fn telemetry_sink(
        &self,
        logs_dir: &Path,
        bin: &str,
        cell: &str,
        manifest: &RunManifest,
        resumed_at: Option<u64>,
    ) -> std::io::Result<Option<JsonlSink>> {
        if !self.telemetry {
            return Ok(None);
        }
        let path = logs_dir.join(format!("{bin}-{}.telemetry.jsonl", sanitize(cell)));
        let sink = match resumed_at {
            Some(step) if self.resume => JsonlSink::resume(&path, manifest, step)?,
            _ => JsonlSink::create(&path, manifest)?,
        };
        Ok(Some(sink))
    }

    /// The telemetry ring capacity implied by the budget's memory ceiling,
    /// or `None` to keep the instrument's default.
    #[must_use]
    pub fn ring_capacity(&self) -> Option<usize> {
        self.budget.ring_capacity()
    }
}

/// Makes a cell label safe as a directory or file name.
#[must_use]
pub fn sanitize(cell: &str) -> String {
    cell.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn parse_recognizes_all_flags() {
        let opts = SweepOptions::parse(
            [
                "--checkpoint-dir",
                "/tmp/ckpt",
                "--resume",
                "--audit-every",
                "50000",
                "--retries",
                "2",
                "--backoff-ms",
                "50",
                "--stall-ms",
                "8000",
                "--deadline-ms",
                "90000",
                "--max-steps",
                "1000000",
                "--max-rollbacks",
                "5",
                "--memory-mb",
                "64",
                "--threads",
                "4",
                "--adaptive",
                "--smoke",
                "--no-telemetry",
                "--bogus",
            ]
            .map(String::from),
        );
        assert_eq!(opts.checkpoint_dir, Some(PathBuf::from("/tmp/ckpt")));
        assert!(opts.resume);
        assert_eq!(opts.audit_every, Some(50_000));
        assert_eq!(opts.budget.max_retries, 2);
        assert_eq!(opts.backoff.base_ms, 50);
        assert_eq!(
            opts.stall,
            Some(StallPolicy {
                poll_ms: 2_000,
                stall_after: 4
            })
        );
        assert_eq!(opts.budget.deadline, Some(Duration::from_millis(90_000)));
        assert_eq!(opts.budget.max_steps, Some(1_000_000));
        assert_eq!(opts.budget.max_rollbacks, 5);
        assert_eq!(opts.budget.memory_ceiling_bytes, Some(64 * 1024 * 1024));
        assert_eq!(opts.threads, 4);
        assert!(opts.adaptive);
        assert!(opts.smoke);
        assert!(!opts.telemetry);
    }

    fn try_parse(args: &[&str]) -> Result<SweepOptions, ConfigError> {
        SweepOptions::try_parse(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn try_parse_rejects_zero_deadline() {
        assert_eq!(
            try_parse(&["--deadline-ms", "0"]),
            Err(ConfigError::ZeroDeadline)
        );
    }

    #[test]
    fn try_parse_rejects_retries_without_rollbacks() {
        assert_eq!(
            try_parse(&["--retries", "2", "--max-rollbacks", "0"]),
            Err(ConfigError::RetriesWithoutRollbacks { retries: 2 })
        );
        // Order must not matter: the combination is checked after the
        // whole argument list is consumed.
        assert_eq!(
            try_parse(&["--max-rollbacks", "0", "--retries", "2"]),
            Err(ConfigError::RetriesWithoutRollbacks { retries: 2 })
        );
        // Explicitly disabling retries alongside rollbacks is fail-fast
        // mode, not a configuration bug.
        assert!(try_parse(&["--retries", "0", "--max-rollbacks", "0"]).is_ok());
    }

    #[test]
    fn try_parse_rejects_memory_ceiling_below_one_snapshot() {
        // 0 MiB cannot hold the ~64 KiB snapshot the retention math
        // assumes; 1 MiB can.
        assert_eq!(
            try_parse(&["--memory-mb", "0"]),
            Err(ConfigError::MemoryCeilingTooSmall {
                ceiling_bytes: 0,
                min_bytes: 64 * 1024,
            })
        );
        assert!(try_parse(&["--memory-mb", "1"]).is_ok());
    }

    #[test]
    fn try_parse_rejects_malformed_and_missing_values() {
        assert_eq!(
            try_parse(&["--deadline-ms", "soon"]),
            Err(ConfigError::InvalidValue {
                flag: "--deadline-ms".to_string(),
                value: "soon".to_string(),
            })
        );
        assert_eq!(
            try_parse(&["--threads", "0"]),
            Err(ConfigError::InvalidValue {
                flag: "--threads".to_string(),
                value: "0".to_string(),
            })
        );
        assert_eq!(
            try_parse(&["--max-steps"]),
            Err(ConfigError::MissingValue {
                flag: "--max-steps".to_string(),
            })
        );
    }

    #[test]
    fn parse_defaults_without_flags() {
        let opts = SweepOptions::parse(std::iter::empty());
        assert_eq!(opts, SweepOptions::default());
        assert!(opts.stall.is_none());
        assert_eq!(opts.threads, 1);
        assert_eq!(opts.budget, ResourceBudget::default());
    }

    #[test]
    fn store_for_is_none_without_checkpoint_dir() {
        let opts = SweepOptions::default();
        assert!(opts.store_for("cell").unwrap().is_none());
    }

    #[test]
    fn telemetry_sink_is_none_when_disabled() {
        let opts = SweepOptions {
            telemetry: false,
            ..SweepOptions::default()
        };
        let manifest = RunManifest {
            run: "test/cell".to_string(),
            seed: 0,
            lambda: 4.0,
            gamma: 4.0,
            n: 10,
            steps: 100,
        };
        assert!(opts
            .telemetry_sink(Path::new("/tmp"), "test", "cell", &manifest, None)
            .unwrap()
            .is_none());
    }

    #[test]
    fn store_for_clears_stale_cells_unless_resuming() {
        let base = std::env::temp_dir().join(format!("sops-runtime-test-{}", std::process::id()));
        let opts = SweepOptions {
            checkpoint_dir: Some(base.clone()),
            ..SweepOptions::default()
        };
        let store = opts.store_for("gamma=4.0").unwrap().unwrap();
        let stale = store.dir().join("step-00000000000000000001.ckpt");
        std::fs::write(&stale, "junk").unwrap();
        // Fresh run: stale snapshot is cleared.
        let store = opts.store_for("gamma=4.0").unwrap().unwrap();
        assert!(store.list().unwrap().is_empty());
        // Resumed run: snapshots survive.
        std::fs::write(&stale, "junk").unwrap();
        let resume = SweepOptions {
            resume: true,
            ..opts.clone()
        };
        let store = resume.store_for("gamma=4.0").unwrap().unwrap();
        assert_eq!(store.list().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn memory_ceiling_clamps_store_retention() {
        let base = std::env::temp_dir().join(format!("sops-runtime-retain-{}", std::process::id()));
        let opts = SweepOptions {
            checkpoint_dir: Some(base.clone()),
            retain: 5,
            budget: ResourceBudget {
                // Half of 128 KiB holds one ~64 KiB snapshot.
                memory_ceiling_bytes: Some(128 * 1024),
                ..ResourceBudget::default()
            },
            ..SweepOptions::default()
        };
        let store = opts.store_for("cell").unwrap().unwrap();
        assert_eq!(store.retain(), 1);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn sanitize_keeps_labels_path_safe() {
        assert_eq!(sanitize("gamma=4.0/x"), "gamma-4.0-x");
        assert_eq!(sanitize("n100"), "n100");
    }
}
