//! Retry backoff: exponential in the attempt number with deterministic
//! jitter, so a batch of simultaneously failing cells does not retry in
//! lockstep yet every schedule is reproducible (the jitter comes from the
//! vendored RNG seeded by `(cell, attempt)`, never from the wall clock).

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

use crate::seeds::seed_hash;

/// The retry-delay policy. See the module docs.
///
/// Guarantees, property-tested in `tests/backoff_props.rs`:
///
/// * delays are monotone non-decreasing in the attempt number until they
///   pin at `cap_ms`;
/// * every delay (jitter included) is ≤ `cap_ms`;
/// * the delay is a pure function of `(policy, cell, attempt)`;
/// * [`BackoffPolicy::schedule_within`] never schedules sleeps whose sum
///   exceeds a wall-clock budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in milliseconds; doubles per attempt.
    /// 0 disables backoff entirely (used by fast tests).
    pub base_ms: u64,
    /// Upper bound on any single delay, jitter included.
    pub cap_ms: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 200,
            cap_ms: 10_000,
        }
    }
}

impl BackoffPolicy {
    /// The jitter-free exponential envelope for `attempt`:
    /// `min(base · 2^(attempt−2), cap)`, saturating instead of wrapping.
    ///
    /// An earlier version froze the doubling at 2^16, which made the
    /// envelope — and with jitter, the delay — non-monotone below large
    /// caps; the saturating form keeps doubling until the cap pins it.
    fn envelope(&self, attempt: u32) -> u64 {
        debug_assert!(attempt >= 2);
        let doublings = attempt - 2;
        let factor = if doublings >= 63 {
            u64::MAX
        } else {
            1u64 << doublings
        };
        self.base_ms.saturating_mul(factor).min(self.cap_ms)
    }

    /// The delay to wait before `attempt` (attempts are 1-based; the
    /// first retry is attempt 2). Pure function of `(self, cell,
    /// attempt)` — tests assert on it without sleeping.
    #[must_use]
    pub fn delay(&self, cell: &str, attempt: u32) -> Duration {
        if self.base_ms == 0 || attempt <= 1 {
            return Duration::ZERO;
        }
        let exp = self.envelope(attempt);
        // Jitter in [0, exp/2), deterministic per (cell, attempt).
        let mut rng =
            StdRng::seed_from_u64(seed_hash(cell, u64::from(attempt)) ^ 0x9e37_79b9_7f4a_7c15);
        let jitter = if exp >= 2 {
            rng.random_range(0..exp / 2)
        } else {
            0
        };
        Duration::from_millis(exp.saturating_add(jitter).min(self.cap_ms))
    }

    /// The prefix of the retry-delay schedule (attempts 2, 3, …,
    /// `max_attempts`) whose *cumulative* sleep fits within `budget`.
    /// This is how total backoff respects a wall-clock budget: the
    /// runtime stops retrying — and degrades the job — rather than sleep
    /// past the deadline.
    #[must_use]
    pub fn schedule_within(
        &self,
        cell: &str,
        max_attempts: u32,
        budget: Duration,
    ) -> Vec<Duration> {
        let mut spent = Duration::ZERO;
        let mut out = Vec::new();
        for attempt in 2..=max_attempts {
            let delay = self.delay(cell, attempt);
            let Some(total) = spent.checked_add(delay) else {
                break;
            };
            if total > budget {
                break;
            }
            spent = total;
            out.push(delay);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_bounded_and_deterministic() {
        let policy = BackoffPolicy {
            base_ms: 100,
            cap_ms: 1_000,
        };
        // No delay before the first attempt.
        assert_eq!(policy.delay("cell", 1), Duration::ZERO);
        let d2 = policy.delay("cell", 2);
        let d3 = policy.delay("cell", 3);
        let d9 = policy.delay("cell", 9);
        // Exponential envelope: delay(k) ∈ [base·2^(k−2), 1.5·base·2^(k−2)].
        assert!(
            d2 >= Duration::from_millis(100) && d2 < Duration::from_millis(150),
            "{d2:?}"
        );
        assert!(
            d3 >= Duration::from_millis(200) && d3 < Duration::from_millis(300),
            "{d3:?}"
        );
        // The cap bounds everything, jitter included.
        assert!(d9 <= Duration::from_millis(1_000), "{d9:?}");
        // Deterministic: same (cell, attempt) → same delay, no wall-clock.
        assert_eq!(d2, policy.delay("cell", 2));
        // Different cells jitter differently (checked below the cap,
        // where the jitter is visible; this fixed pair is known to
        // differ).
        assert_ne!(policy.delay("gamma=2.0", 3), policy.delay("gamma=4.0", 3));
        // Disabled policy never sleeps.
        let off = BackoffPolicy {
            base_ms: 0,
            cap_ms: 0,
        };
        assert_eq!(off.delay("cell", 7), Duration::ZERO);
    }

    #[test]
    fn deep_attempts_stay_monotone_below_a_large_cap() {
        // Regression: the old 2^16 doubling freeze made the envelope flat
        // from attempt 18 on, so jitter alone could order delays
        // backwards below a large cap.
        let policy = BackoffPolicy {
            base_ms: 1,
            cap_ms: u64::MAX,
        };
        let mut prev = Duration::ZERO;
        for attempt in 2..80 {
            let d = policy.delay("deep", attempt);
            assert!(d >= prev, "attempt {attempt}: {d:?} < {prev:?}");
            prev = d;
        }
    }

    #[test]
    fn schedule_within_respects_the_budget() {
        let policy = BackoffPolicy {
            base_ms: 100,
            cap_ms: 10_000,
        };
        let schedule = policy.schedule_within("cell", 10, Duration::from_millis(500));
        let total: Duration = schedule.iter().sum();
        assert!(total <= Duration::from_millis(500), "{schedule:?}");
        // And an ample budget admits every retry.
        let all = policy.schedule_within("cell", 5, Duration::from_secs(3600));
        assert_eq!(all.len(), 4);
    }
}
