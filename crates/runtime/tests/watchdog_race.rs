//! Regression tests for the stall-watchdog poll/cancel race (satellite:
//! heartbeat race fix).
//!
//! The hazard: the monitor polls a cell's step counter, judges it frozen,
//! and only *then* decides to cancel. If the cell advances between the
//! poll and the cancel decision, a naive watchdog kills a healthy cell.
//! The fix is a two-phase protocol:
//!
//! 1. [`MonitorState::poll`] is the pure decision core — each call is one
//!    tick of a (real or fake) clock and returns *advisory* verdicts as
//!    `(cell, expected_step)` pairs;
//! 2. the verdict is confirmed against the live counter with
//!    [`Heartbeat::cancel_if_stalled_at`], which refuses to place the
//!    stall mark when the counter moved past `expected`, and
//!    [`Heartbeat::beat`] revokes a mark the instant progress passes it.
//!
//! These tests drive the protocol with a deterministic fake clock — every
//! `poll` call is a tick, `beat` calls are interleaved at exact points —
//! so the race window is exercised without threads or sleeps.

use sops_runtime::{CancelKind, Heartbeat, MonitorState, StallPolicy};

/// The core regression: the cell advances *between* the monitor's poll
/// (which judged it frozen) and the cancel decision. The confirmation
/// step must notice the stale verdict and spare the cell.
#[test]
fn cell_advancing_between_poll_and_cancel_is_not_killed() {
    let hb = Heartbeat::new();
    let mut mon = MonitorState::new(1, 2);

    hb.beat(100);
    // Tick 1 observes 100 as progress from the initial 0; ticks 2 and 3
    // see it frozen, and tick 3 crosses the stall_after=2 threshold.
    assert!(mon.poll(&[(hb.steps(), false)]).is_empty());
    assert!(mon.poll(&[(hb.steps(), false)]).is_empty());
    let verdict = mon.poll(&[(hb.steps(), false)]);
    assert_eq!(verdict, vec![(0, 100)]);

    // RACE WINDOW: the cell beats after the poll but before the monitor
    // acts on the verdict.
    hb.beat(101);

    // The confirmation step sees the counter moved and withdraws.
    let (_, expected) = verdict[0];
    assert!(!hb.cancel_if_stalled_at(expected));
    assert!(!hb.is_cancelled());
    assert_eq!(hb.cancel_kind(), None);
}

/// Progress that lands *after* the stall mark is placed revokes it — the
/// mark is a conditional sentence, not a death warrant.
#[test]
fn beat_after_stall_mark_revokes_the_cancellation() {
    let hb = Heartbeat::new();
    hb.beat(500);

    // The mark sticks while the counter really is frozen at 500...
    assert!(hb.cancel_if_stalled_at(500));
    assert_eq!(hb.cancel_kind(), Some(CancelKind::Stalled));

    // ...but the next beat proves the cell alive and lifts it.
    hb.beat(501);
    assert!(!hb.is_cancelled());
    assert_eq!(hb.cancel_kind(), None);
}

/// A genuinely frozen cell is cancelled, and the cancellation is
/// classified as a stall (not an external cancel), which is what the
/// runner maps to `DegradeReason::Stalled`.
#[test]
fn truly_stalled_cell_is_cancelled_as_stalled() {
    let hb = Heartbeat::new();
    let mut mon = MonitorState::new(1, 3);

    hb.beat(42);
    assert!(mon.poll(&[(hb.steps(), false)]).is_empty()); // progress 0→42
    assert!(mon.poll(&[(hb.steps(), false)]).is_empty()); // frozen ×1
    assert!(mon.poll(&[(hb.steps(), false)]).is_empty()); // frozen ×2
    let verdict = mon.poll(&[(hb.steps(), false)]); // frozen ×3 → stalled
    assert_eq!(verdict, vec![(0, 42)]);

    // No beat intervenes: the confirmation succeeds and sticks.
    assert!(hb.cancel_if_stalled_at(42));
    assert!(hb.is_cancelled());
    assert_eq!(hb.cancel_kind(), Some(CancelKind::Stalled));

    // Idempotent under repeated polls: the verdict stays up while the
    // counter stays frozen.
    assert_eq!(mon.poll(&[(hb.steps(), false)]), vec![(0, 42)]);
}

/// A stale verdict must not leave a latent mark behind: after the failed
/// confirmation, the cell keeps running and later freezes at a *new*
/// step; only a fresh verdict at the new step may kill it.
#[test]
fn withdrawn_verdict_leaves_no_latent_mark() {
    let hb = Heartbeat::new();
    let mut mon = MonitorState::new(1, 2);

    hb.beat(10);
    mon.poll(&[(hb.steps(), false)]); // progress 0→10
    mon.poll(&[(hb.steps(), false)]); // frozen ×1
    let verdict = mon.poll(&[(hb.steps(), false)]); // frozen ×2 → stalled
    assert_eq!(verdict, vec![(0, 10)]);
    hb.beat(11); // race: advances before confirmation
    assert!(!hb.cancel_if_stalled_at(10));

    // The cell now freezes at 11. The old withdrawn mark must not make
    // it appear cancelled before the monitor re-judges it.
    assert!(!hb.is_cancelled());
    assert!(mon.poll(&[(hb.steps(), false)]).is_empty()); // progress 10→11
    assert!(mon.poll(&[(hb.steps(), false)]).is_empty()); // frozen ×1
    let verdict = mon.poll(&[(hb.steps(), false)]); // frozen ×2 → stalled
    assert_eq!(verdict, vec![(0, 11)]);
    assert!(hb.cancel_if_stalled_at(11));
    assert_eq!(hb.cancel_kind(), Some(CancelKind::Stalled));
}

/// Multi-cell fake-clock run: one cell makes progress every tick, one
/// freezes mid-run. Only the frozen cell is cancelled, and the healthy
/// cell's heartbeat is untouched through the whole schedule.
#[test]
fn watchdog_kills_only_the_frozen_cell_in_a_mixed_sweep() {
    let healthy = Heartbeat::new();
    let frozen = Heartbeat::new();
    let policy = StallPolicy::with_timeout_ms(4_000);
    assert_eq!(policy.stall_after, 4);
    let mut mon = MonitorState::new(2, policy.stall_after);

    let mut killed: Vec<usize> = Vec::new();
    for tick in 1u64..=12 {
        healthy.beat(tick * 1_000);
        if tick <= 3 {
            frozen.beat(tick * 100);
        }
        let observed = [
            (healthy.steps(), healthy.is_cancelled()),
            (frozen.steps(), frozen.is_cancelled()),
        ];
        for (idx, expected) in mon.poll(&observed) {
            let hb = if idx == 0 { &healthy } else { &frozen };
            if hb.cancel_if_stalled_at(expected) && !killed.contains(&idx) {
                killed.push(idx);
            }
        }
    }

    assert_eq!(killed, vec![1]);
    assert!(!healthy.is_cancelled());
    assert_eq!(frozen.cancel_kind(), Some(CancelKind::Stalled));
    assert_eq!(frozen.steps(), 300);
}
