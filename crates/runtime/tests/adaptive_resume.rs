//! Kill-and-resume determinism for the adaptive convergence engine: a
//! monitored run interrupted mid-flight and resumed from its checkpoint
//! (chain state + RNG + monitor sidecar) must reach the *bit-identical*
//! stop decision — same converged step, same diagnostics, same final
//! state and RNG — as the same run left uninterrupted. Also drives a
//! constant-observable chain through the full stopping path end to end
//! (the regression for the estimator panics this PR fixed).

use std::ops::ControlFlow;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, RngExt as _, SeedableRng};
use sops_chains::{Auditable, MarkovChain, Repairable, StateCodec};
use sops_runtime::{
    run_cells, run_chain_monitored, BackoffPolicy, CellStatus, ChainJob, CheckpointStore,
    ConvergenceMonitor, ResourceBudget, StopReason, SweepOptions,
};

/// A fresh scratch directory per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sops-adaptive-resume-{}-{tag}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[derive(Clone, Debug, PartialEq)]
struct Counter {
    x: u64,
}

impl StateCodec for Counter {
    fn encode_state(&self) -> Vec<u8> {
        self.x.to_le_bytes().to_vec()
    }
    fn decode_state(bytes: &[u8]) -> Result<Self, String> {
        let arr: [u8; 8] = bytes.try_into().map_err(|_| "bad length".to_string())?;
        Ok(Counter {
            x: u64::from_le_bytes(arr),
        })
    }
}

impl Auditable for Counter {
    fn audit_violations(&self) -> Vec<String> {
        Vec::new()
    }
}

impl Repairable for Counter {
    fn repair_state(&mut self) -> Result<Vec<String>, Vec<String>> {
        Ok(Vec::new())
    }
}

/// A lazy walk that freezes once the counter reaches 40,000: its
/// observable plateaus, so a plateau ∧ ESS ∧ R̂ ∧ certificate stack
/// eventually latches. The RNG keeps being drawn after the freeze, so
/// RNG-state equality below is a real check, not vacuous.
struct Freezes;

impl MarkovChain for Freezes {
    type State = Counter;
    fn step<R: Rng + ?Sized>(&self, s: &mut Counter, rng: &mut R) -> bool {
        if rng.random_range(0..2u8) == 0 && s.x < 40_000 {
            s.x += 1;
            true
        } else {
            false
        }
    }
}

fn monitor() -> ConvergenceMonitor {
    ConvergenceMonitor::new(32)
        .with_rule(Box::new(sops_runtime::PlateauRule::new(8, 0.02)))
        .with_rule(Box::new(sops_runtime::EssRule::new(6.0, 12, 8)))
        .with_rule(Box::new(sops_runtime::RHatRule::new(1.05, 8)))
        .with_rule(Box::new(sops_runtime::CertificateRule::new(3)))
}

fn fast_opts() -> SweepOptions {
    SweepOptions {
        backoff: BackoffPolicy {
            base_ms: 0,
            cap_ms: 0,
        },
        ..SweepOptions::default()
    }
}

/// One monitored leg against `store`, budgeted to `max_steps`. Returns
/// (stop decision as (step, diagnostics-json), final state bytes, final
/// RNG bytes, steps this leg ran).
#[allow(clippy::type_complexity)]
fn run_leg(
    store: &CheckpointStore,
    max_steps: Option<u64>,
) -> (Option<(u64, String)>, Vec<u8>, Vec<u8>, u64) {
    let opts = SweepOptions {
        budget: ResourceBudget {
            max_steps,
            ..ResourceBudget::default()
        },
        ..fast_opts()
    };
    let outcomes = run_cells(vec!["cell"], &opts, |_, ctx| {
        let mut state = Counter { x: 0 };
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let job = ChainJob {
            steps: 2_000_000,
            every: 1_000,
            store: Some(store),
            audit_every: None,
        };
        let mut monitor = monitor();
        let (run, stop) = run_chain_monitored(
            ctx,
            &Freezes,
            &mut state,
            &mut rng,
            job,
            &mut monitor,
            |s| s.x as f64,
            |s| s.x >= 40_000,
            |_, _| ControlFlow::Continue(()),
        )?;
        let stop =
            stop.map(|StopReason::Converged { step, diagnostics }| (step, diagnostics.to_json()));
        Ok((
            stop,
            state.encode_state(),
            rng.to_state_bytes().to_vec(),
            run.steps,
        ))
    });
    outcomes[0].result.clone().expect("leg produced a result")
}

#[test]
fn interrupted_and_resumed_run_reaches_the_identical_stop_decision() {
    // Reference: one uninterrupted run.
    let scratch_a = Scratch::new("uninterrupted");
    let store_a = CheckpointStore::open(&scratch_a.0, 3).unwrap();
    let (stop_a, state_a, rng_a, _) = run_leg(&store_a, None);
    let (step_a, diag_a) = stop_a.expect("uninterrupted run converges");

    // Interrupted: leg 1 is killed by its step budget before the monitor
    // can latch; leg 2 resumes chain state, RNG, and the monitor sidecar
    // from the same store.
    let scratch_b = Scratch::new("interrupted");
    let store_b = CheckpointStore::open(&scratch_b.0, 3).unwrap();
    let (stop_b1, _, _, steps_b1) = run_leg(&store_b, Some(50_000));
    assert!(stop_b1.is_none(), "leg 1 must be cut before convergence");
    assert_eq!(steps_b1, 50_000);
    assert!(step_a > 50_000, "interruption must precede the stop step");
    let (stop_b2, state_b, rng_b, _) = run_leg(&store_b, None);
    let (step_b, diag_b) = stop_b2.expect("resumed run converges");

    // Bit-identical stop decision and trajectory.
    assert_eq!(step_a, step_b, "converged step");
    assert_eq!(diag_a, diag_b, "diagnostics snapshot");
    assert_eq!(state_a, state_b, "final chain state bytes");
    assert_eq!(rng_a, rng_b, "final RNG state bytes");
}

/// A chain that never moves: every observable window is constant from
/// step one. The full stopping path (plateau, ESS, R̂, certificate) must
/// classify it as converged — not panic, not divide by zero — which is
/// exactly the degenerate input the statistics estimators used to choke
/// on.
struct Frozen;

impl MarkovChain for Frozen {
    type State = Counter;
    fn step<R: Rng + ?Sized>(&self, _s: &mut Counter, rng: &mut R) -> bool {
        let _ = rng.random_range(0..2u8);
        false
    }
}

#[test]
fn constant_observable_chain_converges_through_the_full_stopping_path() {
    let outcomes = run_cells(vec!["cell"], &fast_opts(), |_, ctx| {
        let mut state = Counter { x: 7 };
        let mut rng = StdRng::seed_from_u64(1);
        let job = ChainJob {
            steps: 1_000_000,
            every: 500,
            store: None,
            audit_every: None,
        };
        let mut monitor = monitor();
        let (_, stop) = run_chain_monitored(
            ctx,
            &Frozen,
            &mut state,
            &mut rng,
            job,
            &mut monitor,
            |s| s.x as f64,
            |_| true,
            |_, _| ControlFlow::Continue(()),
        )?;
        let Some(StopReason::Converged { step, diagnostics }) = stop else {
            panic!("constant chain must converge, got {stop:?}");
        };
        assert_eq!(diagnostics.get("plateau_delta"), Some(0.0));
        assert_eq!(diagnostics.get("r_hat"), Some(1.0));
        Ok(step)
    });
    assert_eq!(outcomes[0].status, CellStatus::Ok);
    // min_samples = 32 at 500-step chunks: the gate opens at step 16,000.
    assert_eq!(outcomes[0].result, Some(16_000));
}
