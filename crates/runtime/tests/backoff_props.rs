//! Property tests for [`BackoffPolicy`] (satellite: retry-backoff
//! guarantees).
//!
//! The policy promises three things the runtime leans on:
//!
//! 1. delays are monotone non-decreasing in the attempt number until they
//!    pin at the cap — a retry never waits *less* than the previous one;
//! 2. the delay is a pure function of `(policy, cell, attempt)` — jitter
//!    is deterministic, never wall-clock-derived, so resumed sweeps
//!    reproduce their retry schedules exactly;
//! 3. [`BackoffPolicy::schedule_within`] bounds the *cumulative* sleep by
//!    a wall-clock budget, which is how total backoff respects the
//!    job deadline.

use std::time::Duration;

use proptest::prelude::*;
use sops_runtime::BackoffPolicy;

fn policy_strategy() -> impl Strategy<Value = BackoffPolicy> {
    (1u64..5_000, 1u64..120_000).prop_map(|(base_ms, cap_ms)| BackoffPolicy { base_ms, cap_ms })
}

fn cell_strategy() -> impl Strategy<Value = String> {
    // The vendored proptest shim has no regex strategies; sample realistic
    // sweep-cell labels from a pool plus a numeric suffix instead.
    const STEMS: [&str; 6] = ["gamma", "n", "swaps", "fig1", "mixing", "cell"];
    (0usize..STEMS.len(), 0u32..1_000)
        .prop_map(|(stem, suffix)| format!("{}={}", STEMS[stem], suffix))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Delays never shrink as the attempt number grows, and once a delay
    /// reaches the cap every later delay equals the cap exactly.
    #[test]
    fn delays_are_monotone_until_pinned_at_cap(
        policy in policy_strategy(),
        cell in cell_strategy(),
        attempts in 4u32..40,
    ) {
        let mut prev = Duration::ZERO;
        let cap = Duration::from_millis(policy.cap_ms);
        for attempt in 1..=attempts {
            let d = policy.delay(&cell, attempt);
            prop_assert!(
                d >= prev,
                "attempt {}: {:?} < {:?} under {:?}", attempt, d, prev, policy
            );
            // Once a delay reaches the cap, every later one equals it.
            if prev == cap {
                prop_assert_eq!(d, cap);
            }
            prev = d;
        }
    }

    /// Every delay, jitter included, respects the cap; attempt 1 (the
    /// first try, not a retry) never waits at all.
    #[test]
    fn every_delay_respects_the_cap(
        policy in policy_strategy(),
        cell in cell_strategy(),
        attempt in 1u32..64,
    ) {
        prop_assert_eq!(policy.delay(&cell, 1), Duration::ZERO);
        prop_assert!(policy.delay(&cell, attempt) <= Duration::from_millis(policy.cap_ms));
    }

    /// The delay is a pure function of `(policy, cell, attempt)`:
    /// recomputing it — including from a rebuilt policy value — yields the
    /// identical duration, and a zero base disables backoff entirely.
    #[test]
    fn jitter_is_deterministic_per_cell_and_attempt(
        policy in policy_strategy(),
        cell in cell_strategy(),
        attempt in 2u32..32,
    ) {
        let d = policy.delay(&cell, attempt);
        prop_assert_eq!(d, policy.delay(&cell, attempt));
        let rebuilt = BackoffPolicy { base_ms: policy.base_ms, cap_ms: policy.cap_ms };
        prop_assert_eq!(d, rebuilt.delay(&cell, attempt));
        let off = BackoffPolicy { base_ms: 0, cap_ms: policy.cap_ms };
        prop_assert_eq!(off.delay(&cell, attempt), Duration::ZERO);
    }

    /// The cumulative sum of the admitted schedule never exceeds the
    /// budget, the schedule is a prefix of the full delay sequence, and an
    /// ample budget admits every retry.
    #[test]
    fn schedule_within_respects_the_wall_clock_budget(
        policy in policy_strategy(),
        cell in cell_strategy(),
        max_attempts in 2u32..20,
        budget_ms in 0u64..60_000,
    ) {
        let budget = Duration::from_millis(budget_ms);
        let schedule = policy.schedule_within(&cell, max_attempts, budget);
        let total: Duration = schedule.iter().sum();
        prop_assert!(total <= budget, "{:?} sums past {:?}", schedule, budget);
        prop_assert!(schedule.len() <= (max_attempts - 1) as usize);
        for (i, d) in schedule.iter().enumerate() {
            let attempt = u32::try_from(i).unwrap() + 2;
            prop_assert_eq!(*d, policy.delay(&cell, attempt));
        }
        // A budget that covers the worst case admits the whole schedule.
        let ample = Duration::from_millis(
            policy.cap_ms.saturating_mul(u64::from(max_attempts)),
        );
        let full = policy.schedule_within(&cell, max_attempts, ample);
        prop_assert_eq!(full.len(), (max_attempts - 1) as usize);
    }
}
