//! The hard-core lattice gas on finite triangular regions.
//!
//! The paper cites the hard-core model twice as a benchmark for the
//! cluster expansion (§1: the textbook treatment "derives several
//! properties of statistical physics models including the Ising and
//! hard-core models"; Helmuth–Perkins–Regts develop algorithms "for …
//! the Potts and hard-core models"). It is also the *simplest possible
//! polymer model: polymers are single occupied vertices with weight `λ`
//! (the fugacity), compatible exactly when non-adjacent — so the
//! partition function is the independence polynomial of the region graph.
//! This module provides it as ground truth for that correspondence.

use sops_lattice::{region::Region, Node};

/// The hard-core partition function
/// `Z(λ) = Σ_{I independent} λ^{|I|}` — the independence polynomial of
/// the region's interior-edge graph evaluated at the fugacity `λ`.
///
/// Computed by backtracking over vertices (include/exclude with
/// neighbor masking), exact for regions up to 64 nodes of treelike or
/// moderate width; a hexagon of radius 3 (37 nodes) takes milliseconds.
///
/// # Panics
///
/// Panics for regions of more than 64 nodes.
#[must_use]
pub fn hardcore_partition_function(region: &Region, fugacity: f64) -> f64 {
    let nodes = region.nodes();
    let n = nodes.len();
    assert!(
        n <= 64,
        "hard-core enumeration limited to 64 nodes, got {n}"
    );
    let index = |v: Node| -> Option<usize> { nodes.iter().position(|&u| u == v) };
    // Neighbor masks.
    let masks: Vec<u64> = nodes
        .iter()
        .map(|&v| {
            let mut m = 0u64;
            for w in v.neighbors() {
                if let Some(j) = index(w) {
                    m |= 1 << j;
                }
            }
            m
        })
        .collect();

    fn recurse(i: usize, blocked: u64, fugacity: f64, masks: &[u64]) -> f64 {
        if i == masks.len() {
            return 1.0;
        }
        // Exclude vertex i.
        let mut total = recurse(i + 1, blocked, fugacity, masks);
        // Include vertex i when no included neighbor blocks it.
        if blocked & (1 << i) == 0 {
            total += fugacity * recurse(i + 1, blocked | masks[i], fugacity, masks);
        }
        total
    }
    recurse(0, 0, fugacity, &masks)
}

/// The number of independent sets of the region graph (`Z(1)`), exact.
#[must_use]
pub fn independent_set_count(region: &Region) -> u64 {
    hardcore_partition_function(region, 1.0).round() as u64
}

/// The mean occupied-site density at fugacity `λ`:
/// `⟨|I|⟩ / |V| = λ Z′(λ) / (|V| Z(λ))`, evaluated by central difference
/// on `ln Z`.
#[must_use]
pub fn mean_density(region: &Region, fugacity: f64) -> f64 {
    let h = fugacity * 1e-6;
    let up = hardcore_partition_function(region, fugacity + h).ln();
    let down = hardcore_partition_function(region, fugacity - h).ln();
    fugacity * (up - down) / (2.0 * h) / region.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_vertex_and_edge() {
        // One node: Z = 1 + λ.
        let single = Region::from_nodes([Node::ORIGIN]);
        assert!((hardcore_partition_function(&single, 2.0) - 3.0).abs() < 1e-12);
        // Two adjacent nodes: Z = 1 + 2λ (both singletons, no pair).
        let pair = Region::parallelogram(2, 1);
        assert!((hardcore_partition_function(&pair, 2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_excludes_all_pairs() {
        // The 3-node triangle {(0,0), (1,0), (0,1)}: Z = 1 + 3λ.
        let tri = Region::from_nodes([Node::new(0, 0), Node::new(1, 0), Node::new(0, 1)]);
        assert!((hardcore_partition_function(&tri, 3.0) - 10.0).abs() < 1e-12);
        assert_eq!(independent_set_count(&tri), 4);
    }

    #[test]
    fn matches_brute_force_on_small_regions() {
        // Oracle: enumerate all subsets and test independence directly.
        for region in [Region::parallelogram(3, 2), Region::hexagon(1)] {
            let nodes = region.nodes();
            let n = nodes.len();
            for fugacity in [0.5f64, 1.0, 2.5] {
                let mut z = 0.0;
                for mask in 0u32..(1 << n) {
                    let chosen: Vec<Node> = (0..n)
                        .filter(|i| mask & (1 << i) != 0)
                        .map(|i| nodes[i])
                        .collect();
                    let independent = chosen
                        .iter()
                        .all(|a| chosen.iter().all(|b| a == b || !a.is_adjacent(*b)));
                    if independent {
                        z += fugacity.powi(chosen.len() as i32);
                    }
                }
                let fast = hardcore_partition_function(&region, fugacity);
                assert!((z - fast).abs() < 1e-9 * z, "λ = {fugacity}: {z} vs {fast}");
            }
        }
    }

    #[test]
    fn density_saturates_at_one_third() {
        // On the triangular lattice the maximum independent set takes one
        // of every three sites; high fugacity pushes density toward it.
        let region = Region::hexagon(2);
        let low = mean_density(&region, 0.1);
        let high = mean_density(&region, 1e6);
        assert!(low < 0.2, "low-fugacity density {low}");
        // Finite hexagons slightly exceed 1/3 thanks to boundary sites.
        assert!((0.3..=0.45).contains(&high), "saturation density {high}");
        assert!(high > low);
    }

    #[test]
    fn zero_fugacity_counts_only_the_empty_set() {
        let region = Region::hexagon(2);
        assert!((hardcore_partition_function(&region, 0.0) - 1.0).abs() < 1e-12);
    }
}
