//! The cluster expansion, Ursell functions, and the Kotecký–Preiss
//! condition (Theorems 10 and 11 of the paper).

use crate::{EdgeSet, PolymerModel};

/// The Ursell factor of a cluster: for an ordered multiset `X` of polymers
/// with incompatibility graph `H_X`,
/// `φ(X) = (1/|X|!) Σ_{G ⊆ H_X connected, spanning} (−1)^{|E(G)|}`.
///
/// Takes the adjacency matrix of `H_X` (`adj[i][j]` true when polymers `i`
/// and `j` are incompatible). Returns 0 when `H_X` is disconnected (such
/// multisets are not clusters).
///
/// # Panics
///
/// Panics for clusters of more than 6 polymers (the 2^{m(m−1)/2} subgraph
/// enumeration).
#[must_use]
pub fn ursell_factor(adj: &[Vec<bool>]) -> f64 {
    let m = adj.len();
    assert!((1..=6).contains(&m), "Ursell factor limited to 1 ≤ |X| ≤ 6");
    if m == 1 {
        return 1.0; // single polymer: empty graph is connected and spanning
    }
    // Collect the edges of H_X.
    let mut edges = Vec::new();
    for (i, row) in adj.iter().enumerate() {
        for (j, &incompatible) in row.iter().enumerate().skip(i + 1) {
            if incompatible {
                edges.push((i, j));
            }
        }
    }
    let mut signed_sum = 0.0;
    for mask in 0u64..(1 << edges.len()) {
        // Check the chosen subgraph is spanning-connected via union-find.
        let mut parent: Vec<usize> = (0..m).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        let mut components = m;
        let mut edge_count = 0;
        for (k, &(i, j)) in edges.iter().enumerate() {
            if mask & (1 << k) != 0 {
                edge_count += 1;
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                    components -= 1;
                }
            }
        }
        if components == 1 {
            signed_sum += if edge_count % 2 == 0 { 1.0 } else { -1.0 };
        }
    }
    let factorial: f64 = (1..=m).map(|k| k as f64).product();
    signed_sum / factorial
}

/// The truncated cluster expansion of `ln Ξ` over an explicit polymer list:
/// sums Equation (2) of the paper over all ordered multisets of at most
/// `max_cluster_size` polymers.
///
/// When the Kotecký–Preiss condition holds the truncation error decays
/// geometrically in the cluster size; tests compare against
/// `ln` of [`crate::partition::exact_partition_function`].
///
/// # Panics
///
/// Panics if `max_cluster_size` is 0 or > 4 (tuple enumeration is
/// `|Γ|^m`).
#[must_use]
pub fn truncated_log_partition<M: PolymerModel>(
    polymers: &[EdgeSet],
    model: &M,
    max_cluster_size: usize,
) -> f64 {
    assert!(
        (1..=4).contains(&max_cluster_size),
        "cluster size must be in 1..=4"
    );
    let n = polymers.len();
    let weights: Vec<f64> = polymers.iter().map(|p| model.weight(p)).collect();
    let mut incompat = vec![vec![false; n]; n];
    for i in 0..n {
        for j in 0..n {
            incompat[i][j] = i == j || !model.compatible(&polymers[i], &polymers[j]);
        }
    }

    let mut total = 0.0;
    let mut tuple = vec![0usize; 1];
    for m in 1..=max_cluster_size {
        tuple.resize(m, 0);
        tuple.iter_mut().for_each(|t| *t = 0);
        'tuples: loop {
            // Incompatibility graph of this ordered multiset.
            let adj: Vec<Vec<bool>> = (0..m)
                .map(|i| {
                    (0..m)
                        .map(|j| i != j && incompat[tuple[i]][tuple[j]])
                        .collect()
                })
                .collect();
            if connected(&adj) {
                let phi = ursell_factor(&adj);
                if phi != 0.0 {
                    let w: f64 = tuple.iter().map(|&i| weights[i]).product();
                    total += phi * w;
                }
            }
            // Advance the tuple (odometer).
            let mut k = m;
            loop {
                if k == 0 {
                    break 'tuples;
                }
                k -= 1;
                tuple[k] += 1;
                if tuple[k] < n {
                    break;
                }
                tuple[k] = 0;
            }
        }
        if n == 0 {
            break;
        }
    }
    total
}

fn connected(adj: &[Vec<bool>]) -> bool {
    let m = adj.len();
    let mut seen = vec![false; m];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1;
    while let Some(u) = stack.pop() {
        for v in 0..m {
            if adj[u][v] && !seen[v] {
                seen[v] = true;
                count += 1;
                stack.push(v);
            }
        }
    }
    count == m
}

/// The Kotecký–Preiss sum of Theorem 11's hypothesis at one edge:
/// `Σ_{ξ ∋ e} |w(ξ)| e^{c|[ξ]|}` over the supplied polymers (all polymers
/// containing the reference edge, up to the caller's enumeration cutoff).
///
/// The hypothesis (Equation 3) requires this to be ≤ `c`; add
/// [`kp_tail_bound`] for the polymers beyond the cutoff.
#[must_use]
pub fn kp_sum<M: PolymerModel>(polymers_at_edge: &[EdgeSet], model: &M, c: f64) -> f64 {
    polymers_at_edge
        .iter()
        .map(|p| model.weight(p).abs() * (c * model.closure_size(p) as f64).exp())
        .sum()
}

/// A geometric tail bound for the polymers above the enumeration cutoff:
/// if at most `growth^k` polymers of size `k` contain a fixed edge, each
/// with `|w| ≤ activity^k` and `|[ξ]| ≤ closure_ratio · k`, the polymers of
/// size > `cutoff` contribute at most
/// `Σ_{k > cutoff} (growth · activity · e^{c·closure_ratio})^k`.
///
/// Returns `f64::INFINITY` when the geometric ratio is ≥ 1.
#[must_use]
pub fn kp_tail_bound(cutoff: usize, growth: f64, activity: f64, closure_ratio: f64, c: f64) -> f64 {
    let r = growth * activity.abs() * (c * closure_ratio).exp();
    if r >= 1.0 {
        return f64::INFINITY;
    }
    r.powi(cutoff as i32 + 1) / (1.0 - r)
}

/// Fits the volume/surface decomposition of Theorem 11 to exact data: given
/// `(|Λ|, |∂Λ|, ln Ξ_Λ)` triples for nested regions, estimates the volume
/// density `ψ` from the two largest regions and returns `(ψ, c_needed)`
/// where `c_needed = max |ln Ξ_Λ − ψ|Λ|| / |∂Λ|` is the smallest surface
/// constant making the sandwich `ψ|Λ| − c|∂Λ| ≤ ln Ξ_Λ ≤ ψ|Λ| + c|∂Λ|`
/// hold on the data.
///
/// # Panics
///
/// Panics with fewer than two data points.
#[must_use]
pub fn volume_surface_fit(data: &[(usize, usize, f64)]) -> (f64, f64) {
    assert!(data.len() >= 2, "need at least two regions to fit ψ");
    let mut sorted = data.to_vec();
    sorted.sort_by_key(|&(vol, _, _)| vol);
    let (v1, _, l1) = sorted[sorted.len() - 2];
    let (v2, _, l2) = sorted[sorted.len() - 1];
    assert!(v2 > v1, "regions must have distinct volumes");
    let psi = (l2 - l1) / (v2 - v1) as f64;
    let c_needed = sorted
        .iter()
        .map(|&(vol, surf, ln_xi)| (ln_xi - psi * vol as f64).abs() / surf as f64)
        .fold(0.0, f64::max);
    (psi, c_needed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CutLoopModel, EvenSubgraphModel};

    use sops_lattice::region::Region;
    use sops_lattice::{Edge, Node};

    #[test]
    fn ursell_factors_match_known_values() {
        // Single polymer: 1.
        assert_eq!(ursell_factor(&[vec![false]]), 1.0);
        // Pair of incompatible polymers: (1/2!)·(−1) = −1/2.
        let pair = vec![vec![false, true], vec![true, false]];
        assert!((ursell_factor(&pair) + 0.5).abs() < 1e-15);
        // Triangle of mutual incompatibility: subgraphs spanning-connected:
        // 3 paths (2 edges, +1 each) + 1 triangle (3 edges, −1): sum = 3·1 − 1 = 2;
        // φ = 2/3! = 1/3.
        let tri = vec![
            vec![false, true, true],
            vec![true, false, true],
            vec![true, true, false],
        ];
        assert!((ursell_factor(&tri) - 1.0 / 3.0).abs() < 1e-15);
        // Path of three (ends compatible): only the full path spans: (−1)² = 1; φ = 1/6.
        let path = vec![
            vec![false, true, false],
            vec![true, false, true],
            vec![false, true, false],
        ];
        assert!((ursell_factor(&path) - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn cluster_expansion_converges_to_exact_log_partition() {
        // Even model in a small hexagon at a subcritical activity: the
        // truncated expansion approaches ln Ξ as the cluster size grows.
        let region = Region::hexagon(1);
        let model = EvenSubgraphModel::new(0.02);
        let polymers = model.polymers_in(&region);
        let exact = crate::partition::even_partition_function(&region, 0.02).ln();
        let mut errors = Vec::new();
        for m in 1..=3 {
            let approx = truncated_log_partition(&polymers, &model, m);
            errors.push((approx - exact).abs());
        }
        assert!(errors[1] < errors[0]);
        assert!(errors[2] < errors[1]);
        assert!(errors[2] < 1e-8, "3-cluster error {}", errors[2]);
    }

    #[test]
    fn cluster_expansion_handles_negative_activities() {
        let region = Region::hexagon(1);
        let model = EvenSubgraphModel::new(-0.02);
        let polymers = model.polymers_in(&region);
        let exact = crate::partition::even_partition_function(&region, -0.02);
        assert!(exact > 0.0, "Ξ stays positive at small negative activity");
        let approx = truncated_log_partition(&polymers, &model, 3);
        assert!((approx - exact.ln()).abs() < 1e-8);
    }

    #[test]
    fn kp_condition_holds_for_cut_loops_above_the_paper_threshold() {
        // Theorem 13's regime: γ > 4^{5/4}, c = 10⁻⁴ (the paper's Lemma 12
        // uses c = 0.0001). Enumerate loops with source size ≤ 3.
        let gamma = 5.66; // just above 4^{5/4} ≈ 5.657
        let c = 1e-4;
        let model = CutLoopModel::new(gamma);
        let edge = Edge::new(Node::new(0, 0), Node::new(1, 0));
        // Sources of size ≤ 3 generate every loop of length ≤ 13 (a source
        // of 4 vertices already has boundary ≥ 14).
        let loops = model.polymers_cutting(edge, 3);
        assert!(loops.iter().all(|l| l.len() <= 14));
        let head = kp_sum(&loops, &model, c);
        // Loops are cycles of the hexagonal dual lattice (degree 3), whose
        // cycles through a fixed edge number < 2^k at length k; bound the
        // length ≥ 14 remainder geometrically.
        let tail = kp_tail_bound(13, 2.0, 1.0 / gamma, 1.0, c);
        assert!(head + tail <= c, "KP sum {head} + tail {tail} > c = {c}");
    }

    #[test]
    fn kp_condition_fails_for_cut_loops_at_small_gamma() {
        // At γ = 2 the head of the sum alone already exceeds c = 10⁻⁴ —
        // consistent with the paper needing a different expansion there.
        let model = CutLoopModel::new(2.0);
        let edge = Edge::new(Node::new(0, 0), Node::new(1, 0));
        let loops = model.polymers_cutting(edge, 2);
        assert!(kp_sum(&loops, &model, 1e-4) > 1e-4);
    }

    #[test]
    fn kp_condition_holds_for_even_polymers_in_the_integration_window() {
        // Theorem 15's regime: γ ∈ (79/81, 81/79) ⇒ |x| < 1/80, a = 10⁻⁵.
        let a = 1e-5;
        let model = EvenSubgraphModel::for_gamma(81.0 / 79.0);
        let edge = Edge::new(Node::new(0, 0), Node::new(1, 0));
        let cycles = model.cycles_through(edge, 5);
        let head = kp_sum(&cycles, &model, a);
        // Even connected subgraphs with ≥ 6 edges: growth < 5 per edge,
        // closure ≤ 10 edges per polymer edge.
        let tail = kp_tail_bound(5, 5.0, model.activity(), 10.0, a);
        assert!(head + tail <= a, "KP sum {head} + tail {tail} > a = {a}");
    }

    #[test]
    fn theorem11_volume_surface_sandwich_for_even_model() {
        // Exact Ξ_Λ on growing parallelograms; the fitted surface constant
        // must be tiny at the paper's activity (|x| = 1/80), consistent
        // with Theorem 11's c.
        let model = EvenSubgraphModel::for_gamma(81.0 / 79.0);
        let mut data = Vec::new();
        for k in 2..=6u32 {
            let region = Region::parallelogram(k, 2);
            let xi = crate::partition::even_partition_function(&region, model.activity());
            data.push((
                region.interior_edges().len(),
                region.boundary_edges().len(),
                xi.ln(),
            ));
        }
        let (psi, c_needed) = volume_surface_fit(&data);
        assert!(psi.abs() < 1e-4, "ψ = {psi}");
        assert!(c_needed < 1e-5, "c_needed = {c_needed}");
    }

    #[test]
    fn lemma12_volume_surface_sandwich_for_cut_loops() {
        // Lemma 12's shape, verified for the loop model: exact Ξ over the
        // cut-loop polymers of growing regions splits into ψ|Λ| ± c|∂Λ|
        // with c at or below the paper's 10⁻⁴ at γ just above 4^{5/4}.
        use crate::partition::exact_partition_function;
        let model = CutLoopModel::new(5.66);
        let mut data = Vec::new();
        for k in 2..=4u32 {
            let region = Region::parallelogram(k, 2);
            // Sources of ≤ 2 vertices cover every loop that matters at this
            // γ (size-3 sources contribute ≤ γ⁻¹² ≈ 1e−9 per loop).
            let polymers = model.polymers_in(&region, 2);
            let xi = exact_partition_function(&polymers, &model);
            data.push((
                region.interior_edges().len(),
                region.boundary_edges().len(),
                xi.ln(),
            ));
        }
        let (psi, c_needed) = volume_surface_fit(&data);
        assert!(psi.abs() < 1e-4, "ψ = {psi}");
        assert!(c_needed < 1e-4, "c_needed = {c_needed}");
    }

    #[test]
    fn tail_bound_is_infinite_at_supercritical_ratio() {
        assert!(kp_tail_bound(5, 4.0, 0.5, 1.0, 0.1).is_infinite());
        assert!(kp_tail_bound(5, 4.0, 0.01, 1.0, 0.1) < 1e-7);
    }
}
