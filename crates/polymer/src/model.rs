//! The abstract polymer model and the paper's two instantiations.

use sops_lattice::{region::Region, Edge, Node, NodeSet, DIRECTIONS};

use crate::EdgeSet;

/// An abstract polymer model: weights and pairwise compatibility over
/// connected edge sets `ξ ⊆ E(G_Δ)` (§4 of the paper).
pub trait PolymerModel {
    /// The real weight `w(ξ)` (may be negative, per the paper's footnote 3).
    fn weight(&self, polymer: &EdgeSet) -> f64;

    /// Whether two polymers are compatible (may appear together in a
    /// collection contributing to `Ξ`).
    fn compatible(&self, a: &EdgeSet, b: &EdgeSet) -> bool;

    /// Size of the closure `[ξ]`: the minimal edge set any polymer
    /// incompatible with `ξ` must intersect.
    fn closure_size(&self, polymer: &EdgeSet) -> usize;
}

/// The large-`γ` polymers of Theorem 13: **cut loops** — minimal edge cut
/// sets `∂S` around finite, connected, simply connected vertex sets `S`,
/// with weight `γ^{−|∂S|}`. Two loops are compatible when they share no
/// edges, so `[ξ] = ξ`.
///
/// These are the "loops" separating color domains: dual cycles of the
/// triangular lattice (the dual is hexagonal, so every loop has ≥ 6 edges,
/// which is what makes the Kotecký–Preiss condition hold with `c = 10⁻⁴`
/// once `γ > 4^{5/4}`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CutLoopModel {
    gamma: f64,
}

impl CutLoopModel {
    /// Creates the model with same-color bias `γ`.
    ///
    /// # Panics
    ///
    /// Panics unless `γ > 1` (the regime where loop weights decay).
    #[must_use]
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 1.0, "cut-loop weights require γ > 1, got {gamma}");
        CutLoopModel { gamma }
    }

    /// The boundary `∂S` of a vertex set: edges with exactly one endpoint
    /// in `S`.
    #[must_use]
    pub fn boundary_of(source: &[Node]) -> EdgeSet {
        let set: NodeSet = source.iter().copied().collect();
        let mut edges = Vec::new();
        for &v in source {
            for d in DIRECTIONS {
                let u = v.neighbor(d);
                if !set.contains(u) {
                    edges.push(Edge::new(v, u));
                }
            }
        }
        EdgeSet::new(edges)
    }

    /// All loop polymers `∂S` for connected, simply connected `S` with
    /// `|S| ≤ max_source` and `S` contained in `region`. Deduplicated.
    #[must_use]
    pub fn polymers_in(&self, region: &Region, max_source: usize) -> Vec<EdgeSet> {
        let sources = connected_subsets(region, max_source);
        let mut out: Vec<EdgeSet> = sources
            .into_iter()
            .filter(|s| is_simply_connected(s))
            .map(|s| Self::boundary_of(&s))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All loop polymers containing `edge` with source size ≤ `max_source`
    /// — the polymers whose weights enter the Kotecký–Preiss sum at `edge`.
    ///
    /// `∂S ∋ (u, v)` iff `S` contains exactly one endpoint; we enumerate
    /// connected simply connected `S ∋ u, S ∌ v` and symmetrically.
    #[must_use]
    pub fn polymers_cutting(&self, edge: Edge, max_source: usize) -> Vec<EdgeSet> {
        let mut out = Vec::new();
        for (inside, outside) in [(edge.u(), edge.v()), (edge.v(), edge.u())] {
            for s in connected_sets_containing(inside, outside, max_source) {
                if is_simply_connected(&s) {
                    out.push(Self::boundary_of(&s));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl PolymerModel for CutLoopModel {
    fn weight(&self, polymer: &EdgeSet) -> f64 {
        self.gamma.powi(-(polymer.len() as i32))
    }

    fn compatible(&self, a: &EdgeSet, b: &EdgeSet) -> bool {
        !a.shares_edge_with(b)
    }

    fn closure_size(&self, polymer: &EdgeSet) -> usize {
        polymer.len() // [ξ] = ξ for edge-disjoint compatibility
    }
}

/// The high-temperature polymers of Theorem 15: **connected even
/// subgraphs** with weight `x^{|ξ|}`, compatible when vertex-disjoint, so
/// `[ξ]` is every edge touching a vertex of `ξ`.
///
/// For the paper's colored-configuration partition function the activity is
/// `x = (γ − 1)/(γ + 1)`; for `γ ∈ (79/81, 81/79)` we get `|x| < 1/80`,
/// which is what makes the condition hold with `a = 10⁻⁵`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvenSubgraphModel {
    x: f64,
}

impl EvenSubgraphModel {
    /// Creates the model with per-edge activity `x` (may be negative).
    #[must_use]
    pub fn new(x: f64) -> Self {
        EvenSubgraphModel { x }
    }

    /// The model at the paper's activity `x = (γ − 1)/(γ + 1)`.
    #[must_use]
    pub fn for_gamma(gamma: f64) -> Self {
        EvenSubgraphModel::new((gamma - 1.0) / (gamma + 1.0))
    }

    /// The per-edge activity.
    #[must_use]
    pub fn activity(&self) -> f64 {
        self.x
    }

    /// All polymers inside `region`: nonempty connected even subgraphs of
    /// the region's interior edge graph, enumerated through the cycle space.
    ///
    /// # Panics
    ///
    /// Panics if the region's cycle space has dimension > 20 (2^dim
    /// enumeration).
    #[must_use]
    pub fn polymers_in(&self, region: &Region) -> Vec<EdgeSet> {
        even_subgraphs(region)
            .into_iter()
            .filter(|s| !s.is_empty() && s.is_connected())
            .collect()
    }

    /// All simple cycles through `edge` of length ≤ `max_len` — the
    /// dominant polymers in the Kotecký–Preiss sum at `edge`. (Non-cycle
    /// even connected subgraphs have ≥ 6 edges and are covered by the
    /// geometric tail bound in [`crate::cluster::kp_tail_bound`].)
    #[must_use]
    pub fn cycles_through(&self, edge: Edge, max_len: usize) -> Vec<EdgeSet> {
        // DFS for simple paths v → u of length ≤ max_len − 1; closing the
        // path with `edge` forms the cycle.
        let (u, v) = (edge.u(), edge.v());
        let mut out = Vec::new();
        let mut path = vec![v];
        dfs_paths(v, u, max_len - 1, &mut path, &mut out);
        let mut cycles: Vec<EdgeSet> = out
            .into_iter()
            .map(|nodes| {
                let mut edges: Vec<Edge> =
                    nodes.windows(2).map(|w| Edge::new(w[0], w[1])).collect();
                edges.push(edge);
                EdgeSet::new(edges)
            })
            .collect();
        cycles.sort_unstable();
        cycles.dedup();
        cycles
    }
}

fn dfs_paths(
    cur: Node,
    target: Node,
    budget: usize,
    path: &mut Vec<Node>,
    out: &mut Vec<Vec<Node>>,
) {
    if budget == 0 {
        return;
    }
    for d in DIRECTIONS {
        let next = cur.neighbor(d);
        if next == target {
            if path.len() >= 2 {
                // ≥ 3 total edges once closed (no doubled edge).
                let mut full = path.clone();
                full.push(target);
                out.push(full);
            }
            continue;
        }
        if path.contains(&next) {
            continue;
        }
        path.push(next);
        dfs_paths(next, target, budget - 1, path, out);
        path.pop();
    }
}

impl PolymerModel for EvenSubgraphModel {
    fn weight(&self, polymer: &EdgeSet) -> f64 {
        self.x.powi(polymer.len() as i32)
    }

    fn compatible(&self, a: &EdgeSet, b: &EdgeSet) -> bool {
        !a.shares_vertex_with(b)
    }

    fn closure_size(&self, polymer: &EdgeSet) -> usize {
        polymer.vertex_closure().len()
    }
}

/// All even subgraphs (including empty and disconnected) of the region's
/// interior edge graph, via the cycle space.
///
/// # Panics
///
/// Panics if the cycle-space dimension exceeds 20.
#[must_use]
pub fn even_subgraphs(region: &Region) -> Vec<EdgeSet> {
    let edges = region.interior_edges();
    let vertices = region.nodes();
    let vindex = |n: Node| -> usize {
        vertices
            .iter()
            .position(|&v| v == n)
            .expect("edge endpoint is a region node")
    };

    // Spanning forest via union-find; non-tree edges seed fundamental cycles.
    let mut parent: Vec<usize> = (0..vertices.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut tree_adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); vertices.len()]; // (nbr, edge idx)
    let mut chords = Vec::new();
    for (i, e) in edges.iter().enumerate() {
        let (a, b) = (vindex(e.u()), vindex(e.v()));
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra == rb {
            chords.push(i);
        } else {
            parent[ra] = rb;
            tree_adj[a].push((b, i));
            tree_adj[b].push((a, i));
        }
    }
    assert!(
        chords.len() <= 20,
        "cycle space dimension {} too large for exact enumeration",
        chords.len()
    );

    // Fundamental cycle of each chord as an edge bitmask.
    let tree_path = |from: usize, to: usize| -> u128 {
        // BFS in the spanning forest.
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; vertices.len()];
        let mut queue = std::collections::VecDeque::from([from]);
        let mut seen = vec![false; vertices.len()];
        seen[from] = true;
        while let Some(u) = queue.pop_front() {
            if u == to {
                break;
            }
            for &(w, ei) in &tree_adj[u] {
                if !seen[w] {
                    seen[w] = true;
                    prev[w] = Some((u, ei));
                    queue.push_back(w);
                }
            }
        }
        let mut mask = 0u128;
        let mut cur = to;
        while let Some((p, ei)) = prev[cur] {
            mask |= 1 << ei;
            cur = p;
        }
        mask
    };
    assert!(edges.len() <= 128, "edge bitmask limited to 128 edges");
    let basis: Vec<u128> = chords
        .iter()
        .map(|&ci| {
            let e = edges[ci];
            (1u128 << ci) | tree_path(vindex(e.u()), vindex(e.v()))
        })
        .collect();

    // Enumerate the span of the basis.
    let mut out = Vec::with_capacity(1 << basis.len());
    for combo in 0u32..(1 << basis.len()) {
        let mut mask = 0u128;
        for (k, b) in basis.iter().enumerate() {
            if combo & (1 << k) != 0 {
                mask ^= b;
            }
        }
        let set: EdgeSet = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect();
        out.push(set);
    }
    out
}

/// All connected subsets of the region's nodes with size ≤ `max_size`.
fn connected_subsets(region: &Region, max_size: usize) -> Vec<Vec<Node>> {
    let mut out: std::collections::HashSet<Vec<Node>> = std::collections::HashSet::new();
    let mut level: std::collections::HashSet<Vec<Node>> = region.iter().map(|n| vec![n]).collect();
    out.extend(level.iter().cloned());
    for _ in 1..max_size {
        let mut next = std::collections::HashSet::new();
        for s in &level {
            let set: NodeSet = s.iter().copied().collect();
            for &n in s {
                for d in DIRECTIONS {
                    let cand = n.neighbor(d);
                    if region.contains(cand) && !set.contains(cand) {
                        let mut grown = s.clone();
                        grown.push(cand);
                        grown.sort_unstable();
                        next.insert(grown);
                    }
                }
            }
        }
        out.extend(next.iter().cloned());
        level = next;
    }
    out.into_iter().collect()
}

/// All connected vertex sets containing `inside`, excluding `outside`,
/// with size ≤ `max_size`.
fn connected_sets_containing(inside: Node, outside: Node, max_size: usize) -> Vec<Vec<Node>> {
    let mut out: std::collections::HashSet<Vec<Node>> = std::collections::HashSet::new();
    let mut level: std::collections::HashSet<Vec<Node>> =
        std::collections::HashSet::from([vec![inside]]);
    out.extend(level.iter().cloned());
    for _ in 1..max_size {
        let mut next = std::collections::HashSet::new();
        for s in &level {
            let set: NodeSet = s.iter().copied().collect();
            for &n in s {
                for d in DIRECTIONS {
                    let cand = n.neighbor(d);
                    if cand != outside && !set.contains(cand) {
                        let mut grown = s.clone();
                        grown.push(cand);
                        grown.sort_unstable();
                        next.insert(grown);
                    }
                }
            }
        }
        out.extend(next.iter().cloned());
        level = next;
    }
    out.into_iter().collect()
}

/// Whether a connected vertex set is simply connected (its complement in
/// the infinite lattice is connected, i.e. it encloses no holes).
fn is_simply_connected(nodes: &[Node]) -> bool {
    let set: NodeSet = nodes.iter().copied().collect();
    let (min_x, max_x) = nodes.iter().fold((i32::MAX, i32::MIN), |(lo, hi), n| {
        (lo.min(n.x), hi.max(n.x))
    });
    let (min_y, max_y) = nodes.iter().fold((i32::MAX, i32::MIN), |(lo, hi), n| {
        (lo.min(n.y), hi.max(n.y))
    });
    let (lo_x, hi_x, lo_y, hi_y) = (min_x - 1, max_x + 1, min_y - 1, max_y + 1);

    // Flood the complement from the margin; count reached complement nodes.
    let mut outside = NodeSet::new();
    let mut stack = Vec::new();
    let start = Node::new(lo_x, lo_y);
    outside.insert(start);
    stack.push(start);
    let in_box = |n: Node| n.x >= lo_x && n.x <= hi_x && n.y >= lo_y && n.y <= hi_y;
    while let Some(n) = stack.pop() {
        for m in n.neighbors() {
            if in_box(m) && !set.contains(m) && outside.insert(m) {
                stack.push(m);
            }
        }
    }
    let box_nodes = ((hi_x - lo_x + 1) * (hi_y - lo_y + 1)) as usize;
    outside.len() == box_nodes - nodes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_of_single_vertex_is_a_hexagon_cut() {
        let b = CutLoopModel::boundary_of(&[Node::ORIGIN]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn boundary_of_domino_has_ten_edges() {
        let b = CutLoopModel::boundary_of(&[Node::ORIGIN, Node::new(1, 0)]);
        assert_eq!(b.len(), 10);
    }

    #[test]
    fn cut_loops_through_an_edge() {
        let model = CutLoopModel::new(6.0);
        let edge = Edge::new(Node::ORIGIN, Node::new(1, 0));
        let loops = model.polymers_cutting(edge, 2);
        // Sources: {u}, {v}, and {u, w} / {v, w} for each of the 5 valid
        // neighbors w ≠ other endpoint: 2 + 2·5 = 12 sources, but ∂S values
        // may coincide only if sources coincide (they don't here).
        assert_eq!(loops.len(), 12);
        for l in &loops {
            assert!(l.contains(edge));
            assert!(l.len() == 6 || l.len() == 10);
            assert!((model.weight(l) - 6.0f64.powi(-(l.len() as i32))).abs() < 1e-15);
        }
    }

    #[test]
    fn cut_loop_compatibility_is_edge_disjointness() {
        let model = CutLoopModel::new(6.0);
        let a = CutLoopModel::boundary_of(&[Node::ORIGIN]);
        let b = CutLoopModel::boundary_of(&[Node::new(1, 0)]);
        let far = CutLoopModel::boundary_of(&[Node::new(10, 10)]);
        assert!(!model.compatible(&a, &b)); // share the edge between them? They share edge (0,0)-(1,0) ✓
        assert!(model.compatible(&a, &far));
        assert_eq!(model.closure_size(&a), 6);
    }

    #[test]
    fn simply_connected_detection() {
        assert!(is_simply_connected(&[Node::ORIGIN]));
        let ring: Vec<Node> = Node::ORIGIN.neighbors().to_vec();
        assert!(!is_simply_connected(&ring));
    }

    #[test]
    fn even_subgraphs_of_small_hexagon() {
        // Hexagon radius 1: 7 vertices, 12 interior edges, cycle dimension 6.
        let region = Region::hexagon(1);
        let all = even_subgraphs(&region);
        assert_eq!(all.len(), 64);
        assert!(all.iter().all(EdgeSet::is_even));
        // The empty subgraph is included once.
        assert_eq!(all.iter().filter(|s| s.is_empty()).count(), 1);
        // Exactly 6 triangles exist (the 6 faces touching the center).
        assert_eq!(all.iter().filter(|s| s.len() == 3).count(), 6);
    }

    #[test]
    fn even_polymers_are_connected_even_subgraphs() {
        let region = Region::hexagon(1);
        let model = EvenSubgraphModel::for_gamma(81.0 / 79.0);
        let polymers = model.polymers_in(&region);
        assert!(!polymers.is_empty());
        for p in &polymers {
            assert!(p.is_even() && p.is_connected() && !p.is_empty());
        }
        // Weight of a triangle is x³ with x = 1/80.
        let tri = polymers.iter().find(|p| p.len() == 3).unwrap();
        assert!((model.weight(tri) - (1.0f64 / 80.0).powi(3)).abs() < 1e-18);
        assert!((model.activity() - 1.0 / 80.0).abs() < 1e-15);
    }

    #[test]
    fn cycles_through_edge_by_length() {
        let model = EvenSubgraphModel::new(0.1);
        let edge = Edge::new(Node::ORIGIN, Node::new(1, 0));
        let triangles = model.cycles_through(edge, 3);
        assert_eq!(triangles.len(), 2); // one face above, one below
        let up_to_4 = model.cycles_through(edge, 4);
        assert!(up_to_4.len() > triangles.len());
        for c in &up_to_4 {
            assert!(c.contains(edge));
            assert!(c.is_even() && c.is_connected());
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn even_compatibility_is_vertex_disjointness() {
        let model = EvenSubgraphModel::new(0.1);
        let e1 = Edge::new(Node::ORIGIN, Node::new(1, 0));
        let e2 = Edge::new(Node::new(1, 0), Node::new(2, 0));
        let c1 = model.cycles_through(e1, 3)[0].clone();
        let c2 = model.cycles_through(e2, 3)[0].clone();
        // Both touch (1,0): incompatible.
        assert!(!model.compatible(&c1, &c2));
        let far = Edge::new(Node::new(20, 0), Node::new(21, 0));
        let c3 = model.cycles_through(far, 3)[0].clone();
        assert!(model.compatible(&c1, &c3));
        // Closure of a triangle: 15 edges (3 vertices × 6 − 3 shared).
        assert_eq!(model.closure_size(&c1), 15);
    }

    #[test]
    #[should_panic(expected = "γ > 1")]
    fn cut_loop_model_rejects_small_gamma() {
        let _ = CutLoopModel::new(0.9);
    }
}
