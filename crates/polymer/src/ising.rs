//! The Ising model on finite triangular regions and its high-temperature
//! expansion — the machinery behind Theorem 15.
//!
//! For a fixed particle shape, the paper's color weight `γ^{−h(σ)}` is an
//! Ising model on the occupied subgraph: same-colored neighbors interact
//! with factor 1, differently colored with factor `γ^{−1}`. The
//! **high-temperature expansion** rewrites the sum over colorings as a sum
//! over *even* edge subsets,
//!
//! `Σ_colorings γ^{−h} = ((1 + γ^{−1})/2)^{|E|} · 2^{|V|} · Σ_{even ξ} x^{|ξ|}`
//!
//! with activity `x = (γ − 1)/(γ + 1)` — exactly the polymer partition
//! function of [`crate::EvenSubgraphModel`]. This module verifies that
//! identity (and the classical `tanh` form for the standard Ising model)
//! by brute force on small regions.

use sops_lattice::{region::Region, Node};

use crate::model::even_subgraphs;

/// Brute-force Ising partition function `Z(β) = Σ_σ exp(β Σ_{uv∈E} σ_u σ_v)`
/// over ±1 spins on the region's nodes.
///
/// # Panics
///
/// Panics for regions of more than 24 nodes.
#[must_use]
pub fn ising_partition_brute(region: &Region, beta: f64) -> f64 {
    let nodes = region.nodes();
    let n = nodes.len();
    assert!(n <= 24, "brute-force Ising limited to 24 spins, got {n}");
    let edges = region.interior_edges();
    let index = |v: Node| {
        nodes
            .iter()
            .position(|&u| u == v)
            .expect("endpoint in region")
    };
    let pairs: Vec<(usize, usize)> = edges.iter().map(|e| (index(e.u()), index(e.v()))).collect();

    let mut z = 0.0;
    for mask in 0u32..(1 << n) {
        let spin = |i: usize| if mask & (1 << i) != 0 { 1.0 } else { -1.0 };
        let energy: f64 = pairs.iter().map(|&(a, b)| spin(a) * spin(b)).sum();
        z += (beta * energy).exp();
    }
    z
}

/// High-temperature expansion of the Ising partition function:
/// `Z(β) = 2^{|V|} (cosh β)^{|E|} Σ_{even ξ} (tanh β)^{|ξ|}`.
///
/// # Panics
///
/// Panics if the region's cycle space is too large to enumerate (see
/// [`crate::model::even_subgraphs`]).
#[must_use]
pub fn ising_partition_ht(region: &Region, beta: f64) -> f64 {
    let e = region.interior_edges().len() as i32;
    let v = region.len() as u32;
    let t = beta.tanh();
    let even_sum: f64 = even_subgraphs(region)
        .iter()
        .map(|s| t.powi(s.len() as i32))
        .sum();
    2.0f64.powi(v as i32) * beta.cosh().powi(e) * even_sum
}

/// The paper's colored-shape partition function by direct enumeration:
/// `Σ over 2-colorings of the region's nodes of γ^{−h}` where `h` counts
/// bichromatic interior edges.
///
/// # Panics
///
/// Panics for regions of more than 24 nodes.
#[must_use]
pub fn color_partition_function_direct(region: &Region, gamma: f64) -> f64 {
    let nodes = region.nodes();
    let n = nodes.len();
    assert!(n <= 24, "direct enumeration limited to 24 nodes, got {n}");
    let edges = region.interior_edges();
    let index = |v: Node| {
        nodes
            .iter()
            .position(|&u| u == v)
            .expect("endpoint in region")
    };
    let pairs: Vec<(usize, usize)> = edges.iter().map(|e| (index(e.u()), index(e.v()))).collect();

    let mut z = 0.0;
    for mask in 0u32..(1 << n) {
        let h = pairs
            .iter()
            .filter(|&&(a, b)| (mask >> a) & 1 != (mask >> b) & 1)
            .count();
        z += gamma.powi(-(h as i32));
    }
    z
}

/// The same partition function via the high-temperature (even-subgraph)
/// expansion with activity `x = (γ − 1)/(γ + 1)`.
#[must_use]
pub fn color_partition_function_ht(region: &Region, gamma: f64) -> f64 {
    let e = region.interior_edges().len() as i32;
    let v = region.len() as i32;
    let x = (gamma - 1.0) / (gamma + 1.0);
    let even_sum: f64 = even_subgraphs(region)
        .iter()
        .map(|s| x.powi(s.len() as i32))
        .sum();
    ((1.0 + 1.0 / gamma) / 2.0).powi(e) * 2.0f64.powi(v) * even_sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ht_expansion_matches_brute_force_ising() {
        for beta in [0.05, 0.2, 0.5] {
            for region in [Region::parallelogram(3, 2), Region::hexagon(1)] {
                let brute = ising_partition_brute(&region, beta);
                let ht = ising_partition_ht(&region, beta);
                assert!(
                    (brute - ht).abs() / brute < 1e-12,
                    "β = {beta}: {brute} vs {ht}"
                );
            }
        }
    }

    #[test]
    fn color_ht_identity_across_gamma() {
        // Including γ < 1 (negative activity) and the integration window.
        for gamma in [0.8, 79.0 / 81.0, 1.0, 81.0 / 79.0, 4.0] {
            let region = Region::hexagon(1);
            let direct = color_partition_function_direct(&region, gamma);
            let ht = color_partition_function_ht(&region, gamma);
            assert!(
                (direct - ht).abs() / direct < 1e-12,
                "γ = {gamma}: {direct} vs {ht}"
            );
        }
    }

    #[test]
    fn gamma_one_counts_all_colorings() {
        // At γ = 1 every coloring has weight 1: Z = 2^|V|.
        let region = Region::parallelogram(2, 2);
        let z = color_partition_function_direct(&region, 1.0);
        assert!((z - 16.0).abs() < 1e-12);
        let ht = color_partition_function_ht(&region, 1.0);
        assert!((ht - 16.0).abs() < 1e-12);
    }

    #[test]
    fn large_gamma_suppresses_bichromatic_edges() {
        // As γ → ∞ only the 2 monochromatic colorings survive.
        let region = Region::parallelogram(2, 2);
        let z = color_partition_function_direct(&region, 1e6);
        assert!((z - 2.0).abs() < 1e-3);
    }

    #[test]
    fn beta_zero_ising_is_free_spins() {
        let region = Region::parallelogram(3, 2);
        let z = ising_partition_brute(&region, 0.0);
        assert!((z - 64.0).abs() < 1e-9);
    }
}
