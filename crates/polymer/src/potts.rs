//! The q-state Potts model on finite triangular regions.
//!
//! §5 of the paper: for `k > 2` colors the proofs "generalize … using
//! insights that generalize cluster expansion polymers from the Ising model
//! to the Potts model (see the notion of a *contour* in Pirogov–Sinai
//! theory)". This module provides the Potts-side ground truth: the exact
//! fixed-shape color partition function `Σ_colorings γ^{−h(σ)}` for `q`
//! colors, its contour (domain-wall) representation, and the reduction to
//! the Ising/high-temperature machinery at `q = 2`.

use sops_lattice::{region::Region, Node};

/// The q-state color partition function of a fixed shape by direct
/// enumeration: `Σ over q-colorings of γ^{−h}` with `h` the number of
/// bichromatic interior edges.
///
/// # Panics
///
/// Panics if `q = 0` or `q^|V|` exceeds ~16 million states.
#[must_use]
pub fn potts_partition_function_direct(region: &Region, gamma: f64, q: u32) -> f64 {
    assert!(q >= 1, "need at least one color");
    let nodes = region.nodes();
    let n = nodes.len();
    let states = (q as u64)
        .checked_pow(n as u32)
        .expect("state space overflows");
    assert!(states <= 16_000_000, "state space too large: {states}");
    let edges = region.interior_edges();
    let index = |v: Node| {
        nodes
            .iter()
            .position(|&u| u == v)
            .expect("endpoint in region")
    };
    let pairs: Vec<(usize, usize)> = edges.iter().map(|e| (index(e.u()), index(e.v()))).collect();

    let mut z = 0.0;
    let mut coloring = vec![0u32; n];
    for _ in 0..states {
        let h = pairs
            .iter()
            .filter(|&&(a, b)| coloring[a] != coloring[b])
            .count();
        z += gamma.powi(-(h as i32));
        // Odometer advance in base q.
        for slot in coloring.iter_mut() {
            *slot += 1;
            if *slot < q {
                break;
            }
            *slot = 0;
        }
    }
    z
}

/// The same partition function via the Fortuin–Kasteleyn (random-cluster)
/// representation:
/// `Z = Σ_{A ⊆ E} p^{|A|} (1−p)^{|E|−|A|} q^{c(A)} / (1−p)^{|E|} …`
/// — concretely, with edge weight `v = γ − 1 ≥ 0` per same-color
/// constraint, `Z_Potts(γ) = γ^{−|E|} Σ_{A ⊆ E} v^{|A|} q^{c(A)}`, where
/// `c(A)` counts connected components of `(V, A)` (isolated vertices
/// included).
///
/// This is the standard bridge from Potts colorings to geometric objects
/// (FK clusters ↔ Pirogov–Sinai contours), verified exactly against the
/// direct sum in tests.
///
/// # Panics
///
/// Panics if the region has more than 20 interior edges (2^|E| subsets) or
/// `γ < 1` (the FK measure needs `v ≥ 0`).
#[must_use]
pub fn potts_partition_function_fk(region: &Region, gamma: f64, q: u32) -> f64 {
    assert!(gamma >= 1.0, "FK representation needs γ ≥ 1");
    let nodes = region.nodes();
    let n = nodes.len();
    let edges = region.interior_edges();
    let m = edges.len();
    assert!(m <= 20, "FK enumeration limited to 20 edges, got {m}");
    let index = |v: Node| {
        nodes
            .iter()
            .position(|&u| u == v)
            .expect("endpoint in region")
    };
    let pairs: Vec<(usize, usize)> = edges.iter().map(|e| (index(e.u()), index(e.v()))).collect();
    let v = gamma - 1.0;

    let mut total = 0.0;
    for mask in 0u32..(1 << m) {
        // Count components of the subgraph (V, A).
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        let mut components = n;
        let mut edge_count = 0;
        for (k, &(a, b)) in pairs.iter().enumerate() {
            if mask & (1 << k) != 0 {
                edge_count += 1;
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                if ra != rb {
                    parent[ra] = rb;
                    components -= 1;
                }
            }
        }
        total += v.powi(edge_count) * f64::from(q).powi(components as i32);
    }
    total * gamma.powi(-(m as i32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ising;

    #[test]
    fn q2_reduces_to_the_ising_color_sum() {
        for gamma in [1.0, 81.0 / 79.0, 2.0, 4.0] {
            for region in [Region::hexagon(1), Region::parallelogram(3, 2)] {
                let potts = potts_partition_function_direct(&region, gamma, 2);
                let ising = ising::color_partition_function_direct(&region, gamma);
                assert!(
                    (potts - ising).abs() / ising < 1e-12,
                    "γ = {gamma}: {potts} vs {ising}"
                );
            }
        }
    }

    #[test]
    fn fk_representation_matches_direct_sum() {
        let region = Region::parallelogram(3, 2); // 9 edges
        for q in [1u32, 2, 3, 4] {
            for gamma in [1.0, 1.5, 3.0] {
                let direct = potts_partition_function_direct(&region, gamma, q);
                let fk = potts_partition_function_fk(&region, gamma, q);
                assert!(
                    (direct - fk).abs() / direct < 1e-12,
                    "q = {q}, γ = {gamma}: {direct} vs {fk}"
                );
            }
        }
    }

    #[test]
    fn gamma_one_counts_colorings() {
        let region = Region::parallelogram(2, 2);
        for q in [2u32, 3, 5] {
            let z = potts_partition_function_direct(&region, 1.0, q);
            assert!((z - f64::from(q).powi(4)).abs() < 1e-9, "q = {q}");
        }
    }

    #[test]
    fn large_gamma_keeps_only_monochromatic_colorings() {
        let region = Region::parallelogram(2, 2);
        for q in [2u32, 3] {
            let z = potts_partition_function_direct(&region, 1e9, q);
            assert!((z - f64::from(q)).abs() < 1e-3, "q = {q}");
        }
    }

    #[test]
    fn q1_is_trivially_one_state() {
        let region = Region::hexagon(1);
        let z = potts_partition_function_direct(&region, 3.0, 1);
        assert!((z - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partition_function_decreases_in_gamma() {
        // Raising γ only suppresses bichromatic colorings.
        let region = Region::parallelogram(3, 2);
        let z2 = potts_partition_function_direct(&region, 2.0, 3);
        let z4 = potts_partition_function_direct(&region, 4.0, 3);
        assert!(z4 < z2);
        assert!(z4 >= 3.0); // the monochromatic floor
    }
}
