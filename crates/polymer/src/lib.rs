//! Polymer models and the cluster expansion — the statistical-physics
//! machinery behind the paper's compression proofs (§4).
//!
//! The paper's Theorems 13 and 15 hinge on rewriting particle-system
//! partition functions as **polymer partition functions**
//! `Ξ = Σ_{compatible Γ′} Π_{ξ∈Γ′} w(ξ)`, proving the **Kotecký–Preiss
//! condition** so the **cluster expansion** of `ln Ξ` converges
//! (Theorem 10), and then splitting `ln Ξ_Λ` into a *volume* term `ψ|Λ|`
//! and a *surface* term `±c|∂Λ|` (Theorem 11). This crate implements all
//! of that concretely and verifiably:
//!
//! * [`model`] — the abstract [`model::PolymerModel`] trait and the paper's
//!   two instantiations: **cut loops** (minimal edge cut sets `∂S` around
//!   connected vertex sets, weight `γ^{−|ξ|}`, compatible when
//!   edge-disjoint — the large-`γ` regime of Theorem 13) and **even
//!   subgraphs** (connected even-degree edge sets, weight `x^{|ξ|}`,
//!   compatible when vertex-disjoint — the high-temperature regime of
//!   Theorem 15);
//! * [`partition`] — exact evaluation of `Ξ_Λ` by backtracking over
//!   compatible polymer collections;
//! * [`cluster`] — Ursell functions and the truncated cluster expansion of
//!   `ln Ξ`, plus numeric verification of the Kotecký–Preiss condition
//!   (Equation 3 of the paper) and of Theorem 11's volume/surface sandwich;
//! * [`ising`] — the Ising model on finite triangular regions with its
//!   exact high-temperature (even-subgraph) expansion, and the mapping from
//!   the paper's color weights `γ^{−h(σ)}` to Ising form.
//!
//! # Example: the high-temperature identity behind Theorem 15
//!
//! ```
//! use sops_lattice::region::Region;
//! use sops_polymer::ising;
//!
//! // Σ over 2-colorings of a small region of γ^{−h} equals the
//! // even-subgraph (high-temperature) expansion exactly.
//! let region = Region::hexagon(1);
//! let gamma = 81.0 / 79.0;
//! let direct = ising::color_partition_function_direct(&region, gamma);
//! let expansion = ising::color_partition_function_ht(&region, gamma);
//! assert!((direct - expansion).abs() / direct < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
mod edgeset;
pub mod hardcore;
pub mod ising;
pub mod model;
pub mod partition;
pub mod potts;

pub use edgeset::EdgeSet;
pub use model::{CutLoopModel, EvenSubgraphModel, PolymerModel};
