//! Canonical finite edge sets, the carrier type for polymers.

use sops_lattice::{Edge, Node};

/// A finite set of lattice edges in canonical sorted order.
///
/// Polymers in both of the paper's models are connected edge sets; keeping
/// them sorted makes equality, hashing, and disjointness checks cheap and
/// deterministic.
///
/// # Example
///
/// ```
/// use sops_lattice::{Edge, Node};
/// use sops_polymer::EdgeSet;
///
/// let a = Node::new(0, 0);
/// let tri = EdgeSet::new(vec![
///     Edge::new(a, Node::new(1, 0)),
///     Edge::new(Node::new(1, 0), Node::new(0, 1)),
///     Edge::new(Node::new(0, 1), a),
/// ]);
/// assert_eq!(tri.len(), 3);
/// assert!(tri.is_connected());
/// assert!(tri.is_even());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeSet {
    edges: Vec<Edge>,
}

impl EdgeSet {
    /// Creates an edge set, sorting and deduplicating.
    #[must_use]
    pub fn new(mut edges: Vec<Edge>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        EdgeSet { edges }
    }

    /// Number of edges `|ξ|`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the set is empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edges in sorted order.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Whether `edge` is in the set (binary search).
    #[must_use]
    pub fn contains(&self, edge: Edge) -> bool {
        self.edges.binary_search(&edge).is_ok()
    }

    /// The distinct endpoints of the edges.
    #[must_use]
    pub fn vertices(&self) -> Vec<Node> {
        let mut vs: Vec<Node> = self.edges.iter().flat_map(|e| e.endpoints()).collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Whether the two sets share an edge.
    #[must_use]
    pub fn shares_edge_with(&self, other: &EdgeSet) -> bool {
        // Merge-scan over the sorted edge lists.
        let (mut i, mut j) = (0, 0);
        while i < self.edges.len() && j < other.edges.len() {
            match self.edges[i].cmp(&other.edges[j]) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        false
    }

    /// Whether the two sets share a vertex.
    #[must_use]
    pub fn shares_vertex_with(&self, other: &EdgeSet) -> bool {
        let vs = self.vertices();
        other
            .edges
            .iter()
            .flat_map(|e| e.endpoints())
            .any(|v| vs.binary_search(&v).is_ok())
    }

    /// Whether the edge set is connected (as a subgraph).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.edges.is_empty() {
            return true;
        }
        let vs = self.vertices();
        let index = |n: Node| vs.binary_search(&n).expect("endpoint is a vertex");
        let mut adj = vec![Vec::new(); vs.len()];
        for e in &self.edges {
            let (u, v) = (index(e.u()), index(e.v()));
            adj[u].push(v);
            adj[v].push(u);
        }
        let mut seen = vec![false; vs.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == vs.len()
    }

    /// Whether every vertex has even degree — the defining property of the
    /// high-temperature polymers.
    #[must_use]
    pub fn is_even(&self) -> bool {
        let vs = self.vertices();
        let mut deg = vec![0u32; vs.len()];
        for e in &self.edges {
            for n in e.endpoints() {
                deg[vs.binary_search(&n).expect("endpoint is a vertex")] += 1;
            }
        }
        deg.iter().all(|d| d % 2 == 0)
    }

    /// The set of edges sharing at least one endpoint with this set — the
    /// closure `[ξ]` of the even-polymer model.
    #[must_use]
    pub fn vertex_closure(&self) -> EdgeSet {
        let mut out = Vec::new();
        for v in self.vertices() {
            for d in sops_lattice::DIRECTIONS {
                out.push(Edge::new(v, v.neighbor(d)));
            }
        }
        EdgeSet::new(out)
    }
}

impl FromIterator<Edge> for EdgeSet {
    fn from_iter<T: IntoIterator<Item = Edge>>(iter: T) -> Self {
        EdgeSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sops_lattice::Direction;

    fn path(len: usize) -> EdgeSet {
        (0..len)
            .map(|x| Edge::new(Node::new(x as i32, 0), Node::new(x as i32 + 1, 0)))
            .collect()
    }

    #[test]
    fn construction_dedups_and_sorts() {
        let e = Edge::from_node_dir(Node::new(0, 0), Direction::E);
        let set = EdgeSet::new(vec![e, e]);
        assert_eq!(set.len(), 1);
        assert!(set.contains(e));
    }

    #[test]
    fn vertices_of_path() {
        let p = path(3);
        assert_eq!(p.vertices().len(), 4);
        assert!(p.is_connected());
        assert!(!p.is_even()); // endpoints have degree 1
    }

    #[test]
    fn sharing_predicates() {
        let p1 = path(2); // edges on x = 0..2
        let far: EdgeSet = vec![Edge::new(Node::new(10, 0), Node::new(11, 0))]
            .into_iter()
            .collect();
        assert!(!p1.shares_edge_with(&far));
        assert!(!p1.shares_vertex_with(&far));

        let touching: EdgeSet = vec![Edge::new(Node::new(2, 0), Node::new(3, 0))]
            .into_iter()
            .collect();
        assert!(!p1.shares_edge_with(&touching));
        assert!(p1.shares_vertex_with(&touching));

        let overlapping = path(1);
        assert!(p1.shares_edge_with(&overlapping));
    }

    #[test]
    fn disconnected_edge_set_detected() {
        let set: EdgeSet = vec![
            Edge::new(Node::new(0, 0), Node::new(1, 0)),
            Edge::new(Node::new(5, 5), Node::new(6, 5)),
        ]
        .into_iter()
        .collect();
        assert!(!set.is_connected());
    }

    #[test]
    fn triangle_is_even_and_closure_is_larger() {
        let a = Node::new(0, 0);
        let b = Node::new(1, 0);
        let c = Node::new(0, 1);
        let tri: EdgeSet = vec![Edge::new(a, b), Edge::new(b, c), Edge::new(c, a)]
            .into_iter()
            .collect();
        assert!(tri.is_even());
        let closure = tri.vertex_closure();
        // 3 vertices × 6 incident edges, triangle edges counted once each:
        // 18 − 3 duplicates = 15 distinct edges.
        assert_eq!(closure.len(), 15);
        for e in tri.edges() {
            assert!(closure.contains(*e));
        }
    }

    #[test]
    fn empty_set_is_connected_and_even() {
        let empty = EdgeSet::new(Vec::new());
        assert!(empty.is_connected());
        assert!(empty.is_even());
        assert!(empty.is_empty());
    }
}
