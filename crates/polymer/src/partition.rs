//! Exact polymer partition functions.

use crate::{EdgeSet, PolymerModel};

/// The exact polymer partition function
/// `Ξ = Σ_{compatible Γ′ ⊆ Γ} Π_{ξ∈Γ′} w(ξ)`
/// over an explicit polymer list, by backtracking.
///
/// The empty collection contributes 1, so `Ξ ≥ 1` for nonnegative weights.
///
/// # Panics
///
/// Panics if more than 26 polymers are given (the 2^N enumeration would be
/// too slow; all exact validations in this repository use small regions).
///
/// # Example
///
/// ```
/// use sops_lattice::{region::Region};
/// use sops_polymer::{partition, EvenSubgraphModel};
///
/// let region = Region::parallelogram(3, 2);
/// let model = EvenSubgraphModel::new(0.05);
/// let polymers = model.polymers_in(&region);
/// let xi = partition::exact_partition_function(&polymers, &model);
/// assert!(xi > 1.0); // positive activities only add weight
/// ```
#[must_use]
pub fn exact_partition_function<M: PolymerModel>(polymers: &[EdgeSet], model: &M) -> f64 {
    assert!(
        polymers.len() <= 26,
        "exact Ξ limited to 26 polymers, got {}",
        polymers.len()
    );
    // Precompute pairwise compatibility as bitmasks.
    let n = polymers.len();
    let mut compat = vec![0u32; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && model.compatible(&polymers[i], &polymers[j]) {
                compat[i] |= 1 << j;
            }
        }
    }
    let weights: Vec<f64> = polymers.iter().map(|p| model.weight(p)).collect();

    // DFS over polymers in order; `allowed` tracks which later polymers
    // remain compatible with everything chosen so far.
    fn recurse(i: usize, allowed: u32, weights: &[f64], compat: &[u32]) -> f64 {
        if i == weights.len() {
            return 1.0;
        }
        // Exclude polymer i.
        let mut total = recurse(i + 1, allowed, weights, compat);
        // Include polymer i if still allowed.
        if allowed & (1 << i) != 0 {
            total += weights[i] * recurse(i + 1, allowed & compat[i], weights, compat);
        }
        total
    }
    recurse(0, (1u64 << n).wrapping_sub(1) as u32, &weights, &compat)
}

/// The exact partition function of the even-subgraph model over a region,
/// computed directly: compatible collections of connected even polymers are
/// in bijection with even subgraphs (components of an even subgraph are
/// vertex-disjoint connected even subgraphs), so
/// `Ξ_Λ = Σ_{even ξ ⊆ Λ} x^{|ξ|}` — no backtracking needed, and regions far
/// beyond the 26-polymer cap of [`exact_partition_function`] stay exact.
///
/// # Panics
///
/// Panics if the region's cycle space is too large (see
/// [`crate::model::even_subgraphs`]).
#[must_use]
pub fn even_partition_function(region: &sops_lattice::region::Region, x: f64) -> f64 {
    crate::model::even_subgraphs(region)
        .iter()
        .map(|s| x.powi(s.len() as i32))
        .sum()
}

/// The number of compatible collections (including the empty one): the
/// partition function at all weights 1. Useful as a combinatorial
/// cross-check.
#[must_use]
pub fn compatible_collection_count<M: PolymerModel>(polymers: &[EdgeSet], model: &M) -> u64 {
    struct UnitWeights<'a, M>(&'a M);
    impl<M: PolymerModel> PolymerModel for UnitWeights<'_, M> {
        fn weight(&self, _: &EdgeSet) -> f64 {
            1.0
        }
        fn compatible(&self, a: &EdgeSet, b: &EdgeSet) -> bool {
            self.0.compatible(a, b)
        }
        fn closure_size(&self, p: &EdgeSet) -> usize {
            self.0.closure_size(p)
        }
    }
    exact_partition_function(polymers, &UnitWeights(model)).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CutLoopModel, EvenSubgraphModel};
    use sops_lattice::region::Region;

    #[test]
    fn empty_polymer_list_gives_one() {
        let model = EvenSubgraphModel::new(0.1);
        assert_eq!(exact_partition_function(&[], &model), 1.0);
    }

    #[test]
    fn two_incompatible_polymers() {
        // Ξ = 1 + w1 + w2 when the two polymers are incompatible.
        let model = EvenSubgraphModel::new(0.5);
        let e1 =
            sops_lattice::Edge::new(sops_lattice::Node::new(0, 0), sops_lattice::Node::new(1, 0));
        let cycles = model.cycles_through(e1, 3); // two triangles sharing e1
        assert_eq!(cycles.len(), 2);
        let xi = exact_partition_function(&cycles, &model);
        let w = 0.5f64.powi(3);
        assert!((xi - (1.0 + 2.0 * w)).abs() < 1e-12);
    }

    #[test]
    fn two_compatible_polymers_multiply() {
        // Ξ = (1 + w1)(1 + w2) for two compatible polymers.
        let model = EvenSubgraphModel::new(0.3);
        let near =
            sops_lattice::Edge::new(sops_lattice::Node::new(0, 0), sops_lattice::Node::new(1, 0));
        let far = sops_lattice::Edge::new(
            sops_lattice::Node::new(30, 0),
            sops_lattice::Node::new(31, 0),
        );
        let polymers = vec![
            model.cycles_through(near, 3)[0].clone(),
            model.cycles_through(far, 3)[0].clone(),
        ];
        let xi = exact_partition_function(&polymers, &model);
        let w = 0.3f64.powi(3);
        assert!((xi - (1.0 + w) * (1.0 + w)).abs() < 1e-12);
    }

    #[test]
    fn even_partition_function_matches_backtracking() {
        // The bijection between compatible polymer collections and even
        // subgraphs: backtracking over connected even polymers must equal
        // the direct even-subgraph sum. (Small region to respect the
        // backtracking cap.)
        let region = Region::parallelogram(3, 2);
        for x in [0.1, 0.01, -0.0125] {
            let model = EvenSubgraphModel::new(x);
            let polymers = model.polymers_in(&region);
            let xi = exact_partition_function(&polymers, &model);
            let direct = even_partition_function(&region, x);
            assert!(
                (xi - direct).abs() < 1e-12 * direct.abs().max(1.0),
                "x = {x}: {xi} vs {direct}"
            );
        }
    }

    #[test]
    fn unit_count_for_cut_loops_in_tiny_region() {
        // Loops from single-vertex sources in a 2-node region: two hexagon
        // cuts sharing the connecting edge → collections: {}, {a}, {b}.
        let region = Region::parallelogram(2, 1);
        let model = CutLoopModel::new(6.0);
        let polymers = model.polymers_in(&region, 1);
        assert_eq!(polymers.len(), 2);
        assert_eq!(compatible_collection_count(&polymers, &model), 3);
    }
}
