//! Property-based tests for the polymer machinery.

use proptest::prelude::*;
use sops_lattice::region::Region;
use sops_lattice::{Edge, Node};
use sops_polymer::cluster::{kp_sum, truncated_log_partition, ursell_factor};
use sops_polymer::partition::{even_partition_function, exact_partition_function};
use sops_polymer::{CutLoopModel, EvenSubgraphModel, PolymerModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The Ursell factor of an ordered cluster is invariant under
    /// relabeling (permutation of the polymers).
    #[test]
    fn ursell_is_permutation_invariant(edges in prop::collection::vec(any::<bool>(), 6)) {
        // Build a 4-vertex incompatibility graph from 6 possible edges,
        // forcing connectivity by always including the path 0-1-2-3.
        let mut adj = vec![vec![false; 4]; 4];
        let pairs = [(0, 1), (1, 2), (2, 3), (0, 2), (0, 3), (1, 3)];
        for (k, &(i, j)) in pairs.iter().enumerate() {
            let present = k < 3 || edges[k];
            adj[i][j] = present;
            adj[j][i] = present;
        }
        let base = ursell_factor(&adj);
        // A permutation of {0,1,2,3}.
        let perm = [2usize, 0, 3, 1];
        let permuted: Vec<Vec<bool>> = (0..4)
            .map(|i| (0..4).map(|j| adj[perm[i]][perm[j]]).collect())
            .collect();
        prop_assert!((base - ursell_factor(&permuted)).abs() < 1e-14);
    }

    /// Even-subgraph partition functions factorize over disjoint unions:
    /// two far-apart regions have Ξ equal to the product of their Ξ's.
    #[test]
    fn even_partition_function_factorizes(x in -0.05f64..0.05, w in 2u32..4, h in 2u32..3) {
        let near = Region::parallelogram(w, h);
        let far = near.translated(100, 0);
        let both = Region::from_nodes(near.iter().chain(far.iter()));
        let xi_near = even_partition_function(&near, x);
        let xi_far = even_partition_function(&far, x);
        let xi_both = even_partition_function(&both, x);
        prop_assert!(
            (xi_both - xi_near * xi_far).abs() < 1e-12 * xi_both.abs().max(1.0)
        );
        // Translation invariance on its own.
        prop_assert!((xi_near - xi_far).abs() < 1e-14);
    }

    /// The truncated cluster expansion is monotone-improving in cluster
    /// size at small activities (error at m = 2 ≤ error at m = 1).
    #[test]
    fn cluster_truncation_improves(x in 0.005f64..0.03) {
        let region = Region::parallelogram(3, 2);
        let model = EvenSubgraphModel::new(x);
        let polymers = model.polymers_in(&region);
        let exact = even_partition_function(&region, x).ln();
        let e1 = (truncated_log_partition(&polymers, &model, 1) - exact).abs();
        let e2 = (truncated_log_partition(&polymers, &model, 2) - exact).abs();
        prop_assert!(e2 <= e1 + 1e-15);
    }

    /// Cut-loop weights decay with γ, so the KP sum is decreasing in γ.
    #[test]
    fn kp_sum_monotone_in_gamma(g1 in 2.0f64..5.0, delta in 0.5f64..3.0) {
        let edge = Edge::new(Node::new(0, 0), Node::new(1, 0));
        let (lo, hi) = (g1, g1 + delta);
        let m_lo = CutLoopModel::new(lo);
        let m_hi = CutLoopModel::new(hi);
        // Same polymer set; weights strictly smaller at larger γ.
        let loops = m_lo.polymers_cutting(edge, 2);
        prop_assert!(kp_sum(&loops, &m_hi, 1e-4) < kp_sum(&loops, &m_lo, 1e-4));
    }

    /// Exact polymer partition functions with nonnegative weights are ≥ 1
    /// and monotone in the polymer set.
    #[test]
    fn partition_function_monotone_in_polymer_set(x in 0.0f64..0.4, keep in 1usize..6) {
        let model = EvenSubgraphModel::new(x);
        let edge = Edge::new(Node::new(0, 0), Node::new(1, 0));
        let all = model.cycles_through(edge, 4);
        let keep = keep.min(all.len());
        let some = &all[..keep];
        let xi_some = exact_partition_function(some, &model);
        let xi_all = exact_partition_function(&all, &model);
        prop_assert!(xi_some >= 1.0);
        prop_assert!(xi_all + 1e-12 >= xi_some);
    }

    /// Boundary sizes of k-vertex sources: |∂S| = 6k − 2·(internal edges),
    /// always even, at least the hexagonal-isoperimetric minimum 6.
    #[test]
    fn cut_loop_sizes_are_even_and_at_least_six(k in 1usize..4) {
        let model = CutLoopModel::new(6.0);
        let edge = Edge::new(Node::new(0, 0), Node::new(1, 0));
        for polymer in model.polymers_cutting(edge, k) {
            prop_assert!(polymer.len() >= 6);
            prop_assert_eq!(polymer.len() % 2, 0);
            prop_assert!(model.weight(&polymer) > 0.0);
        }
    }
}
