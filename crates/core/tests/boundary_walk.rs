//! Degenerate-input and exhaustive validation of
//! [`Configuration::boundary_walk_length`] against the perimeter identity
//! `p(σ) = 3n − e(σ) − 3` (paper, Definition of `p`; used by Lemma 6).
//!
//! The contour walk is an independent O(p) recomputation of the perimeter;
//! on hole-free connected configurations the two must agree exactly. The
//! degenerate shapes (single particle, dumbbell, straight lines) have empty
//! interiors, so every edge is traversed twice by the walk — the cases where
//! an off-by-one in the retreat-from-a-leaf scan would show up.

use sops_core::{enumerate, Color, Configuration};
use sops_lattice::{Node, DIRECTIONS};

fn identity(config: &Configuration) -> u64 {
    (3 * config.len() as u64)
        .checked_sub(config.edge_count() + 3)
        .expect("p = 3n − e − 3 is non-negative for connected configurations")
}

#[test]
fn single_particle_walk_is_empty() {
    let config = Configuration::new([(Node::ORIGIN, Color::C1)]).unwrap();
    assert_eq!(config.boundary_walk_length(), 0);
    assert_eq!(identity(&config), 0);
    assert_eq!(config.perimeter(), 0);
}

#[test]
fn dumbbell_walk_traverses_its_edge_twice_in_every_orientation() {
    for dir in DIRECTIONS {
        let config = Configuration::new([
            (Node::ORIGIN, Color::C1),
            (Node::ORIGIN.neighbor(dir), Color::C2),
        ])
        .unwrap();
        assert_eq!(config.boundary_walk_length(), 2, "orientation {dir}");
        assert_eq!(identity(&config), 2);
    }
}

#[test]
fn straight_line_walk_is_out_and_back() {
    // A line of n particles has e = n − 1, so p = 3n − (n−1) − 3 = 2(n−1):
    // the contour goes out along the top and retreats through every leaf.
    for dir in DIRECTIONS {
        for n in 2..=9_i32 {
            let config = Configuration::new((0..n).map(|k| {
                let mut node = Node::ORIGIN;
                for _ in 0..k {
                    node = node.neighbor(dir);
                }
                (node, if k % 2 == 0 { Color::C1 } else { Color::C2 })
            }))
            .unwrap();
            assert_eq!(
                config.boundary_walk_length(),
                2 * (n as u64 - 1),
                "line n={n} along {dir}"
            );
            assert_eq!(config.boundary_walk_length(), identity(&config));
        }
    }
}

#[test]
fn walk_length_equals_perimeter_identity_on_all_hole_free_shapes() {
    // Exhaustive over every connected hole-free shape (up to translation)
    // of 1 ≤ n ≤ 9 particles: the walk, the tracked perimeter, and the
    // identity 3n − e − 3 must pairwise agree.
    for n in 1..=9 {
        let shapes = enumerate::hole_free_shapes(n);
        assert!(!shapes.is_empty());
        for shape in &shapes {
            let config = Configuration::new(shape.iter().map(|&nd| (nd, Color::C1))).unwrap();
            let walk = config.boundary_walk_length();
            assert_eq!(walk, identity(&config), "shape {shape:?}");
            assert_eq!(walk, config.perimeter(), "shape {shape:?}");
        }
    }
}
