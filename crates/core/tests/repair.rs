//! Counter rebuild and in-place repair, validated exhaustively.
//!
//! The recovery ladder's first rung rests on one claim: the counter
//! caches (`e(σ)`, `h(σ)`) are pure functions of occupancy, so rebuilding
//! them is always sound and a rebuild of an uncorrupted state is a no-op.
//! These tests check the claim on *every* enumerated hole-free shape up
//! to n = 9 rather than a sampled handful.

use sops_core::{enumerate, AuditViolation, Color, Configuration};
use sops_lattice::Node;

/// A deterministic bicoloring: alternate colors in shape order.
fn bicolor(shape: &[Node]) -> Vec<(Node, Color)> {
    shape
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, if i % 2 == 0 { Color::C1 } else { Color::C2 }))
        .collect()
}

#[test]
fn rebuild_counters_round_trips_on_every_hole_free_shape_up_to_9() {
    let mut checked = 0u64;
    for n in 1..=9 {
        for shape in enumerate::hole_free_shapes(n) {
            let mut config = Configuration::new(bicolor(&shape)).unwrap();
            let before = (config.edge_count(), config.hetero_edge_count());

            // No-op on a consistent state.
            let old = config.rebuild_counters();
            assert_eq!(old, before, "rebuild changed a consistent state: {shape:?}");
            assert_eq!(
                (config.edge_count(), config.hetero_edge_count()),
                before,
                "{shape:?}"
            );

            // Corrupt both caches, rebuild, and require exact restoration
            // plus a clean audit.
            config.inject_counter_fault(u64::MAX, before.0 + 17);
            let old = config.rebuild_counters();
            assert_eq!(old, (u64::MAX, before.0 + 17));
            assert_eq!(
                (config.edge_count(), config.hetero_edge_count()),
                before,
                "rebuild failed to restore exact counters: {shape:?}"
            );
            assert!(config.audit().is_consistent(), "{shape:?}");
            checked += 1;
        }
    }
    // 1 + 3 + 11 + 44 + … fixed hole-free polyforms; the exact total is
    // pinned elsewhere, here we only guard against an empty enumeration.
    assert!(checked > 10_000, "enumeration looks truncated: {checked}");
}

#[test]
fn repair_fixes_counter_class_violations() {
    let shape: Vec<Node> = enumerate::hole_free_shapes(7).swap_remove(100);
    let mut config = Configuration::new(bicolor(&shape)).unwrap();
    let before = (config.edge_count(), config.hetero_edge_count());

    // Inflate edges past 3n − 3 so the audit reports drift on both
    // counters *and* a perimeter underflow.
    config.inject_counter_fault(1_000, 999);
    let report = config.audit();
    assert!(!report.is_consistent());
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, AuditViolation::PerimeterUnderflow { .. })));

    let outcome = config.repair(&report);
    assert!(outcome.fully_repaired(), "{outcome:?}");
    assert_eq!(outcome.repaired.len(), 1, "one rebuild covers all drift");
    assert!(outcome.unrepaired.is_empty());
    assert_eq!((config.edge_count(), config.hetero_edge_count()), before);
    assert!(config.audit().is_consistent());
}

#[test]
fn repair_on_consistent_state_reports_nothing() {
    let shape: Vec<Node> = enumerate::hole_free_shapes(6).swap_remove(0);
    let mut config = Configuration::new(bicolor(&shape)).unwrap();
    let report = config.audit();
    let outcome = config.repair(&report);
    assert!(outcome.fully_repaired());
    assert!(outcome.repaired.is_empty());
}

#[test]
fn structural_violations_are_declared_unrepairable() {
    // Two separated particles: connectivity is violated in a way no
    // counter rebuild can mend. Construct via decode of raw particle
    // bytes is impossible (Configuration::new rejects disconnection), so
    // synthesize the report instead: repair must classify Disconnected
    // as unrepairable without touching the state.
    let shape: Vec<Node> = enumerate::hole_free_shapes(5).swap_remove(3);
    let mut config = Configuration::new(bicolor(&shape)).unwrap();
    let mut report = config.audit();
    report.violations.push(AuditViolation::Disconnected);
    let outcome = config.repair(&report);
    assert!(!outcome.fully_repaired());
    assert_eq!(outcome.unrepaired, vec![AuditViolation::Disconnected]);
    assert!(outcome.repaired.is_empty());
}

#[test]
fn repairable_trait_round_trips_through_the_chains_seam() {
    use sops_chains::Repairable as _;

    let shape: Vec<Node> = enumerate::hole_free_shapes(8).swap_remove(42);
    let mut config = Configuration::new(bicolor(&shape)).unwrap();
    let before = (config.edge_count(), config.hetero_edge_count());

    // Clean state: repair via the trait is a quiet no-op.
    assert_eq!(config.repair_state(), Ok(Vec::new()));

    // Corrupted caches: the trait repairs and reports what it did.
    config.inject_counter_fault(before.0 + 5, before.1 + 5);
    let actions = config.repair_state().expect("counter drift is repairable");
    assert_eq!(actions.len(), 1);
    assert!(actions[0].contains("rebuilt counter caches"), "{actions:?}");
    assert_eq!((config.edge_count(), config.hetero_edge_count()), before);
}
