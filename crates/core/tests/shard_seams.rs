//! Shard-seam correctness (ISSUE satellite 3): adjacent particle pairs
//! placed to straddle a stripe boundary in every orientation.
//!
//! The [`ParallelConfig::boundaries`] test hook pins the seam exactly
//! where the pair sits, so every proposal whose footprint crosses it must
//! be deferred — never evaluated, never committed by a shard worker — and
//! the deferred pass, replayed through the live sequential kernel, must
//! classify each proposal exactly as [`run_sharded_reference`] does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sops_core::{
    run_sharded_reference, Bias, Color, Configuration, ParallelConfig, SeparationChain,
};
use sops_lattice::{Direction, Node, DIRECTIONS};

/// A two-particle heterogeneous pair: one at the origin, one at the
/// origin's `dir` neighbor.
fn pair_config(dir: Direction) -> Configuration {
    Configuration::new([
        (Node::ORIGIN, Color::new(0)),
        (Node::ORIGIN.neighbor(dir), Color::new(1)),
    ])
    .unwrap()
}

/// The seam row that splits (or grazes) the pair: between the rows for
/// out-of-row pairs, through the shared row for in-row (E/W) pairs — in
/// every case within footprint reach of both particles.
fn seam_for(dir: Direction) -> i32 {
    let dy = Node::ORIGIN.neighbor(dir).y;
    dy.max(0)
}

fn seam_schedule(dir: Direction) -> ParallelConfig {
    ParallelConfig {
        threads: 2,
        boundaries: Some(vec![seam_for(dir)]),
        ..ParallelConfig::default()
    }
}

#[test]
fn straddling_pairs_defer_every_first_round_proposal_in_all_orientations() {
    let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
    for dir in DIRECTIONS {
        let mut config = pair_config(dir);
        let mut rng = StdRng::seed_from_u64(2024);
        // One round: n = 2 proposals, both drawn while the pair still
        // straddles the seam, so both footprints cross it.
        let report = chain.run_parallel_with(&mut config, 2, &seam_schedule(dir), &mut rng);
        assert_eq!(report.steps, 2);
        assert_eq!(
            report.deferred, 2,
            "a footprint across the {dir:?} seam must never run inside a shard"
        );
        assert_eq!(report.shards, 2);
        assert!(config.audit().is_consistent());
        assert!(config.is_connected());
    }
}

#[test]
fn seam_straddling_runs_match_the_sequential_reference_in_all_orientations() {
    // Longer runs: the pair drifts, sometimes away from the seam and back,
    // so direct commits and deferred reconciliations interleave. The
    // concurrent engine must stay bit-for-bit on the reference trajectory,
    // which evaluates every deferred proposal through the live sequential
    // kernel — deferred outcomes therefore match sequential outcome
    // classes by construction, and this test pins it end to end.
    let chain = SeparationChain::new(Bias::new(2.0, 2.0).unwrap());
    for (i, dir) in DIRECTIONS.into_iter().enumerate() {
        let pcfg = seam_schedule(dir);
        let mut par_config = pair_config(dir);
        let mut ref_config = par_config.clone();
        let seed = 90 + i as u64;
        let mut par_rng = StdRng::seed_from_u64(seed);
        let mut ref_rng = StdRng::seed_from_u64(seed);

        let par = chain.run_parallel_with(&mut par_config, 600, &pcfg, &mut par_rng);
        let reference = run_sharded_reference(&chain, &mut ref_config, 600, &pcfg, &mut ref_rng);

        assert_eq!(par, reference, "{dir:?} seam diverged from reference");
        assert!(par.deferred > 0, "{dir:?} seam never exercised deferral");
        assert_eq!(
            (0..par_config.len())
                .map(|p| par_config.position_of(p))
                .collect::<Vec<_>>(),
            (0..ref_config.len())
                .map(|p| ref_config.position_of(p))
                .collect::<Vec<_>>(),
        );
        assert_eq!(par_rng.next_u64(), ref_rng.next_u64());
        assert!(par_config.audit().is_consistent());
    }
}

#[test]
fn dense_seam_traffic_stays_on_the_reference_trajectory() {
    // A 12-particle block, two rows high, with the seam between the rows:
    // heavy straddling traffic plus real in-stripe work on both sides.
    let particles = (0..6)
        .flat_map(|x| {
            [
                (Node::new(x, 0), Color::new(0)),
                (Node::new(x, 1), Color::new(1)),
            ]
        })
        .collect::<Vec<_>>();
    let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
    let pcfg = ParallelConfig {
        threads: 2,
        boundaries: Some(vec![1]),
        ..ParallelConfig::default()
    };
    let mut par_config = Configuration::new(particles.clone()).unwrap();
    let mut ref_config = par_config.clone();
    let mut par_rng = StdRng::seed_from_u64(404);
    let mut ref_rng = StdRng::seed_from_u64(404);

    let par = chain.run_parallel_with(&mut par_config, 3_000, &pcfg, &mut par_rng);
    let reference = run_sharded_reference(&chain, &mut ref_config, 3_000, &pcfg, &mut ref_rng);
    assert_eq!(par, reference);
    assert!(par.deferred > 0);
    assert!(par.accepted > 0, "the system should actually evolve");
    assert_eq!(par_config.edge_count(), ref_config.edge_count());
    assert_eq!(
        par_config.hetero_edge_count(),
        ref_config.hetero_edge_count()
    );
    assert!(par_config.audit().is_consistent());
    assert_eq!(par_rng.next_u64(), ref_rng.next_u64());
}

#[test]
#[should_panic(expected = "stripe boundary")]
fn out_of_range_explicit_boundaries_are_rejected() {
    let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
    let mut config = pair_config(Direction::E);
    let mut rng = StdRng::seed_from_u64(0);
    let pcfg = ParallelConfig {
        threads: 2,
        boundaries: Some(vec![10_000]),
        ..ParallelConfig::default()
    };
    chain.run_parallel_with(&mut config, 10, &pcfg, &mut rng);
}
