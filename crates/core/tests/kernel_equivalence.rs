//! Proof-by-test that the fused proposal kernel is bit-for-bit equivalent
//! to the unfused reference path.
//!
//! Two forms of evidence, per the kernel's contract:
//!
//! 1. **Long-run stream equality** — two copies of the same initial state
//!    driven by identically seeded RNGs, one through the fused
//!    [`SeparationChain::propose`], one through
//!    [`SeparationChain::propose_reference`], must visit identical states,
//!    classify every step identically, and leave their RNG streams in
//!    identical positions after ≥10⁵ steps.
//! 2. **Exhaustive small-configuration enumeration** — every proposal
//!    `(configuration, particle, direction)` over all connected shapes of
//!    `n ≤ 4` particles and all of their bicolorings, under both an
//!    always-accepting and an always-rejecting Metropolis draw, with swaps
//!    on and off.
//!
//! The batched engine ([`SeparationChain::run_batched_with`]) gets the same
//! two forms of evidence against *its* oracle — sequentially replaying each
//! block's proposal stream through the scalar fused kernel under the
//! batched RNG draw-order contract (pair draws block-first via
//! `PreparedUniform`, Metropolis draws lazy and commit-ordered). Identical
//! outcome sequences, states, and RNG positions, including partial final
//! blocks and degenerate block sizes.

use rand::rngs::StdRng;
use rand::{PreparedUniform, Rng, RngExt, SeedableRng};
use sops_core::{construct, enumerate, Bias, Configuration, SeparationChain, StepOutcome};
use sops_lattice::{Direction, Node, DIRECTIONS};

/// An RNG whose `next_u64` is a fixed constant: `0` accepts any positive
/// Metropolis ratio, `u64::MAX` rejects any ratio below 1. Deterministic,
/// so fused and reference paths see identical draws by construction.
struct ConstRng(u64);

impl Rng for ConstRng {
    fn next_u64(&mut self) -> u64 {
        self.0
    }
}

fn assert_streams_identical(chain: SeparationChain, n: usize, n1: usize, seed: u64, steps: u64) {
    let mut fused_rng = StdRng::seed_from_u64(seed);
    let mut ref_rng = StdRng::seed_from_u64(seed);
    let mut fused_config = construct::hexagonal_bicolored(n, n1).unwrap();
    let mut ref_config = fused_config.clone();

    for step in 0..steps {
        // Replicate step_detailed's sampling so both kernels receive the
        // same proposal from the same stream position.
        let p = fused_rng.random_range(0..fused_config.len());
        let d = DIRECTIONS[fused_rng.random_range(0..6usize)];
        let p2 = ref_rng.random_range(0..ref_config.len());
        let d2 = DIRECTIONS[ref_rng.random_range(0..6usize)];
        assert_eq!((p, d), (p2, d2), "proposal streams diverged at {step}");

        let fused = chain.propose(&mut fused_config, p, d, &mut fused_rng);
        let reference = chain.propose_reference(&mut ref_config, p, d, &mut ref_rng);
        assert_eq!(fused, reference, "outcome diverged at step {step}");
        if step % 10_000 == 0 {
            assert_eq!(
                fused_config.canonical_form(),
                ref_config.canonical_form(),
                "state diverged by step {step}"
            );
        }
    }
    assert_eq!(fused_config.canonical_form(), ref_config.canonical_form());
    assert_eq!(
        (fused_config.edge_count(), fused_config.hetero_edge_count()),
        (ref_config.edge_count(), ref_config.hetero_edge_count())
    );
    assert_eq!(
        fused_rng.next_u64(),
        ref_rng.next_u64(),
        "RNG streams diverged over {steps} steps"
    );
}

#[test]
fn fused_kernel_is_rng_and_state_identical_over_100k_steps() {
    // The separating regime (λ, γ large), with swaps: the acceptance
    // criterion's headline equivalence run.
    let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
    assert_streams_identical(chain, 48, 24, 2024, 100_000);
}

#[test]
fn fused_kernel_equivalence_without_swaps_and_in_weak_bias_regime() {
    // Swap-ablated chain: exercises the TargetOccupiedHold path heavily.
    let chain = SeparationChain::without_swaps(Bias::new(4.0, 4.0).unwrap());
    assert_streams_identical(chain, 30, 15, 7, 60_000);
    // λ, γ < 1: every exponent sign flips, so certainly_accepts triggers on
    // the complementary set of proposals and the filter draws elsewhere.
    let chain = SeparationChain::new(Bias::new(0.8, 0.6).unwrap());
    assert_streams_identical(chain, 30, 10, 99, 60_000);
}

#[test]
fn fused_kernel_equivalence_exhaustive_on_small_configurations() {
    // Every (shape ≤ 4, bicoloring, particle, direction, draw, swap-mode)
    // proposal: fused and reference must agree on classification and on the
    // mutated state. The ConstRng draws make both filter branches
    // deterministic, so this is a complete case analysis of the kernel.
    let chains = [
        SeparationChain::new(Bias::new(4.0, 3.0).unwrap()),
        SeparationChain::without_swaps(Bias::new(4.0, 3.0).unwrap()),
        SeparationChain::new(Bias::new(0.5, 2.0).unwrap()),
    ];
    // All connected shapes with n ≤ 4 particles, plus the six 5-star shapes
    // (a center with exactly five occupied neighbors) — the smallest
    // configurations that can trip the |N(ℓ)| = 5 guard.
    let mut all_shapes: Vec<Vec<Node>> = (1..=4).flat_map(enumerate::shapes).collect();
    for missing in DIRECTIONS {
        let mut star = vec![Node::ORIGIN];
        star.extend(
            DIRECTIONS
                .iter()
                .filter(|&&d| d != missing)
                .map(|&d| Node::ORIGIN.neighbor(d)),
        );
        all_shapes.push(star);
    }
    let mut seen = std::collections::HashSet::new();
    let mut proposals = 0u64;
    for shape in all_shapes {
        {
            let n = shape.len();
            for n1 in 0..=n {
                for coloring in enumerate::bicolorings(&shape, n1) {
                    let config = Configuration::new(coloring).unwrap();
                    for chain in &chains {
                        for particle in 0..config.len() {
                            for dir in DIRECTIONS {
                                for draw in [0, u64::MAX] {
                                    let mut fused_config = config.clone();
                                    let mut ref_config = config.clone();
                                    let fused = chain.propose(
                                        &mut fused_config,
                                        particle,
                                        dir,
                                        &mut ConstRng(draw),
                                    );
                                    let reference = chain.propose_reference(
                                        &mut ref_config,
                                        particle,
                                        dir,
                                        &mut ConstRng(draw),
                                    );
                                    assert_eq!(
                                        fused, reference,
                                        "outcome diverged: n={n} n1={n1} particle={particle} \
                                         dir={dir} draw={draw}"
                                    );
                                    assert_eq!(
                                        fused_config.canonical_form(),
                                        ref_config.canonical_form(),
                                        "state diverged: n={n} n1={n1} particle={particle} \
                                         dir={dir} draw={draw}"
                                    );
                                    seen.insert(fused);
                                    proposals += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    // Every consistent-state outcome class appears in the enumeration
    // (InvalidStateHold requires a corrupted state; unit tests cover it).
    for outcome in [
        StepOutcome::MoveAccepted,
        StepOutcome::MoveRejectedFiveNeighbors,
        StepOutcome::MoveRejectedProperty,
        StepOutcome::MoveRejectedMetropolis,
        StepOutcome::SwapAccepted,
        StepOutcome::SwapRejectedMetropolis,
        StepOutcome::SameColorHold,
        StepOutcome::TargetOccupiedHold,
    ] {
        assert!(seen.contains(&outcome), "{outcome} never produced");
    }
    assert!(proposals > 10_000, "enumeration too small: {proposals}");
}

/// The batched engine's oracle: consume the RNG exactly per the batched
/// draw-order contract — each block's (particle, direction) pairs up front
/// through `PreparedUniform`, then the proposals one at a time through the
/// scalar fused kernel (whose Metropolis draws are lazy and in commit
/// order by construction).
fn sequential_replay<R: Rng + ?Sized>(
    chain: &SeparationChain,
    config: &mut Configuration,
    steps: u64,
    block: usize,
    rng: &mut R,
) -> Vec<StepOutcome> {
    let particle_sampler = PreparedUniform::new(config.len() as u64);
    let dir_sampler = PreparedUniform::new(DIRECTIONS.len() as u64);
    let mut outcomes = Vec::with_capacity(steps as usize);
    let mut remaining = steps;
    while remaining > 0 {
        let b = remaining.min(block as u64) as usize;
        let pairs: Vec<(usize, Direction)> = (0..b)
            .map(|_| {
                let p = particle_sampler.sample_usize(rng);
                let d = DIRECTIONS[dir_sampler.sample_usize(rng)];
                (p, d)
            })
            .collect();
        for (p, d) in pairs {
            outcomes.push(chain.propose(config, p, d, rng));
        }
        remaining -= b as u64;
    }
    outcomes
}

fn assert_batched_matches_replay(
    chain: SeparationChain,
    n: usize,
    n1: usize,
    seed: u64,
    steps: u64,
    block: usize,
) {
    let mut batched_rng = StdRng::seed_from_u64(seed);
    let mut oracle_rng = StdRng::seed_from_u64(seed);
    let mut batched_config = construct::hexagonal_bicolored(n, n1).unwrap();
    let mut oracle_config = batched_config.clone();

    let mut batched_outcomes = Vec::with_capacity(steps as usize);
    let report = chain.run_batched_with(&mut batched_config, steps, block, &mut batched_rng, |o| {
        batched_outcomes.push(o);
    });
    let oracle_outcomes =
        sequential_replay(&chain, &mut oracle_config, steps, block, &mut oracle_rng);

    assert_eq!(report.steps, steps);
    for (step, (b, o)) in batched_outcomes.iter().zip(&oracle_outcomes).enumerate() {
        assert_eq!(b, o, "outcome diverged at step {step} (block={block})");
    }
    assert_eq!(batched_outcomes.len(), oracle_outcomes.len());
    assert_eq!(
        batched_config.canonical_form(),
        oracle_config.canonical_form(),
        "state diverged (block={block})"
    );
    assert_eq!(
        (
            batched_config.edge_count(),
            batched_config.hetero_edge_count()
        ),
        (
            oracle_config.edge_count(),
            oracle_config.hetero_edge_count()
        )
    );
    assert_eq!(
        batched_rng.next_u64(),
        oracle_rng.next_u64(),
        "RNG streams diverged over {steps} steps (block={block})"
    );
    assert_eq!(
        report.accepted,
        batched_outcomes.iter().filter(|o| o.accepted()).count() as u64
    );
}

#[test]
fn batched_kernel_matches_sequential_replay_over_100k_steps() {
    // The headline run: separating regime with swaps, full blocks of 64
    // plus a partial final block (100 000 = 1562·64 + 32).
    let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
    assert_batched_matches_replay(chain, 48, 24, 2024, 100_000, 64);
}

#[test]
fn batched_kernel_equivalence_without_swaps_and_in_weak_bias_regime() {
    // Swap-ablated chain: TargetOccupiedHold lanes take the narrow 2-node
    // conflict footprint, so this regime stresses that fast path.
    let chain = SeparationChain::without_swaps(Bias::new(4.0, 4.0).unwrap());
    assert_batched_matches_replay(chain, 30, 15, 7, 100_000, 64);
    // λ, γ < 1 flips every certainty test, so the q-draw schedule (the part
    // of the contract that is easiest to get subtly wrong) moves to the
    // complementary set of proposals.
    let chain = SeparationChain::new(Bias::new(0.8, 0.6).unwrap());
    assert_batched_matches_replay(chain, 30, 10, 99, 100_000, 64);
}

#[test]
fn batched_kernel_equivalence_at_degenerate_and_partial_block_sizes() {
    let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
    // B = 1: every block is a single proposal — batching must degenerate to
    // the sequential kernel with Lemire pair draws.
    assert_batched_matches_replay(chain, 20, 10, 11, 5_000, 1);
    // B = 7: steps not a multiple of the block, ending on a partial block
    // of 3 (5000 = 714·7 + 2 → final block of 2).
    assert_batched_matches_replay(chain, 20, 10, 13, 5_000, 7);
    // Max block on a tiny system: in-block conflicts (and thus the
    // sequential-fallback path) fire constantly.
    assert_batched_matches_replay(chain, 8, 4, 17, 20_000, 64);
}

#[test]
fn batched_kernel_equivalence_exhaustive_on_small_configurations() {
    // Every connected shape with n ≤ 4 particles × every bicoloring ×
    // swaps on/off, driven for 200 seeded steps at two block sizes and
    // compared proposal-for-proposal against the sequential replay oracle.
    // Small systems maximize conflict density, so the fallback path is
    // exercised on every shape that can accept a move.
    let chains = [
        SeparationChain::new(Bias::new(4.0, 3.0).unwrap()),
        SeparationChain::without_swaps(Bias::new(4.0, 3.0).unwrap()),
    ];
    let mut checked = 0u64;
    for shape in (1..=4).flat_map(enumerate::shapes) {
        let n = shape.len();
        for n1 in 0..=n {
            for coloring in enumerate::bicolorings(&shape, n1) {
                let config = Configuration::new(coloring).unwrap();
                for chain in &chains {
                    for block in [3, 8] {
                        let seed = 31 * checked + block as u64;
                        let mut batched_rng = StdRng::seed_from_u64(seed);
                        let mut oracle_rng = StdRng::seed_from_u64(seed);
                        let mut batched_config = config.clone();
                        let mut oracle_config = config.clone();
                        let mut outcomes = Vec::new();
                        chain.run_batched_with(
                            &mut batched_config,
                            200,
                            block,
                            &mut batched_rng,
                            |o| outcomes.push(o),
                        );
                        let oracle = sequential_replay(
                            chain,
                            &mut oracle_config,
                            200,
                            block,
                            &mut oracle_rng,
                        );
                        assert_eq!(
                            outcomes, oracle,
                            "outcomes diverged: n={n} n1={n1} block={block}"
                        );
                        assert_eq!(
                            batched_config.canonical_form(),
                            oracle_config.canonical_form(),
                            "state diverged: n={n} n1={n1} block={block}"
                        );
                        assert_eq!(batched_rng.next_u64(), oracle_rng.next_u64());
                        checked += 1;
                    }
                }
            }
        }
    }
    assert!(checked > 100, "enumeration too small: {checked} runs");
}
