//! Ad-hoc timing probes for the batched engine (ignored by default; run
//! with `cargo test --release -p sops-core --test batch_timing -- --ignored
//! --nocapture` to print a per-piece cost breakdown).

use rand::rngs::StdRng;
use rand::{PreparedUniform, RngExt, SeedableRng};
use sops_core::{construct, Bias, SeparationChain};
use sops_lattice::DIRECTIONS;
use std::hint::black_box;
use std::time::Instant;

#[test]
#[ignore]
fn timing_breakdown() {
    let n = 100usize;
    let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
    let mut config = construct::hexagonal_bicolored(n, n / 2).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    use sops_chains::MarkovChain;
    chain.run(&mut config, 2_000_000, &mut rng);

    const N: u64 = 20_000_000;
    let mut rng = StdRng::seed_from_u64(1);
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..N {
        acc ^= rng.random_range(0..n) as u64;
        acc ^= rng.random_range(0..6usize) as u64;
    }
    black_box(acc);
    println!(
        "random_range pair: {:.2} ns",
        t.elapsed().as_nanos() as f64 / N as f64
    );

    let mut rng = StdRng::seed_from_u64(1);
    let ps = PreparedUniform::new(n as u64);
    let ds = PreparedUniform::new(6);
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..N {
        acc ^= ps.sample(&mut rng);
        acc ^= ds.sample(&mut rng);
    }
    black_box(acc);
    println!(
        "prepared pair:     {:.2} ns",
        t.elapsed().as_nanos() as f64 / N as f64
    );

    // Steady-state batched run with fallback stats.
    let mut rng = StdRng::seed_from_u64(2);
    let mut c = config.clone();
    let t = Instant::now();
    let report = chain.run_batched(&mut c, 4_000_000, &mut rng);
    println!(
        "run_batched:       {:.2} ns/step  (accepted {:.3}%, fallback {:.3}%)",
        t.elapsed().as_nanos() as f64 / 4e6,
        report.accepted as f64 / 4e4,
        report.fallback_proposals as f64 / 4e4,
    );

    for block in [16usize, 32, 48, 64] {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = config.clone();
        let t = Instant::now();
        chain.run_batched_with(&mut c, 4_000_000, block, &mut rng, |_| {});
        println!(
            "  block {block:>2}: {:.2} ns/step",
            t.elapsed().as_nanos() as f64 / 4e6
        );
    }

    // Primitive costs: the 1-probe hold path and the 8-probe ring gather.
    let mut rng = StdRng::seed_from_u64(5);
    let ps = PreparedUniform::new(n as u64);
    let ds = PreparedUniform::new(6);
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..N {
        let p = ps.sample_usize(&mut rng);
        let d = DIRECTIONS[ds.sample_usize(&mut rng)];
        let f = config.position_of(p);
        let to = f.neighbor(d);
        if let Some(c) = config.color_at(to) {
            acc ^= u64::from(c == config.color_of(p));
        }
    }
    black_box(acc);
    println!(
        "hold-lane primitive: {:.2} ns",
        t.elapsed().as_nanos() as f64 / N as f64
    );

    let mut rng = StdRng::seed_from_u64(5);
    let t = Instant::now();
    let mut acc = 0u64;
    const NG: u64 = 5_000_000;
    for _ in 0..NG {
        let p = ps.sample_usize(&mut rng);
        let d = DIRECTIONS[ds.sample_usize(&mut rng)];
        let f = config.position_of(p);
        acc ^= u64::from(config.ring_gather(f, d).occupancy);
    }
    black_box(acc);
    println!(
        "draw+gather:         {:.2} ns",
        t.elapsed().as_nanos() as f64 / NG as f64
    );

    // Outcome histogram at steady state (lane-mix for optimization).
    let mut rng = StdRng::seed_from_u64(2);
    let mut c = config.clone();
    let mut hist = std::collections::BTreeMap::new();
    chain.run_batched_with(&mut c, 1_000_000, 64, &mut rng, |o| {
        *hist.entry(format!("{o:?}")).or_insert(0u64) += 1;
    });
    for (k, v) in &hist {
        println!("  {k:<28} {:.2}%", *v as f64 / 1e4);
    }

    // Sequential fused for reference.
    let mut rng = StdRng::seed_from_u64(2);
    let mut c = config.clone();
    let t = Instant::now();
    for _ in 0..4_000_000u64 {
        let p = rng.random_range(0..c.len());
        let d = DIRECTIONS[rng.random_range(0..6usize)];
        black_box(chain.propose(&mut c, p, d, &mut rng));
    }
    println!(
        "sequential fused:  {:.2} ns/step",
        t.elapsed().as_nanos() as f64 / 4e6
    );
}
