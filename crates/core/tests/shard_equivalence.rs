//! Proof-by-test for the sharded parallel engine's contract
//! ([`sops_core::shard`]):
//!
//! 1. **One shard ≡ sequential, bit-for-bit** — `run_parallel(.., 1, ..)`
//!    must equal a hand replay of the documented node-slot draw contract
//!    fed through the sequential [`SeparationChain::propose`] kernel,
//!    including the caller's final RNG stream position.
//! 2. **Multi-shard ≡ reference replay** — for assorted shard counts and
//!    chromatic phase counts, the concurrent engine must match
//!    [`run_sharded_reference`] (the same schedule replayed
//!    single-threaded through the live kernel) in state, report, and RNG
//!    position.
//! 3. **Fixed-schedule determinism** — same (seed, schedule) twice is
//!    identical; a different seed diverges.
//! 4. **Conservation + invariants** — every proposal lands in exactly one
//!    outcome class (Σ counts = steps), and [`Configuration::audit`] stays
//!    clean at checkpoints throughout a sharded run.

use rand::rngs::StdRng;
use rand::{PreparedUniform, Rng, SeedableRng};
use sops_core::{
    construct, run_sharded_reference, Bias, Configuration, ParallelConfig, SeparationChain,
    StepOutcome,
};
use sops_lattice::{Node, DIRECTIONS};

fn hex(n: usize, n1: usize) -> Configuration {
    construct::hexagonal_bicolored(n, n1).unwrap()
}

fn positions(config: &Configuration) -> Vec<(Node, u8)> {
    (0..config.len())
        .map(|i| (config.position_of(i), config.color_of(i).index()))
        .collect()
}

fn assert_same_state(a: &Configuration, b: &Configuration) {
    assert_eq!(positions(a), positions(b), "particle placements diverged");
    assert_eq!(a.edge_count(), b.edge_count());
    assert_eq!(a.hetero_edge_count(), b.hetero_edge_count());
}

#[test]
fn one_shard_is_bit_for_bit_the_sequential_node_slot_kernel() {
    let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
    let steps: u64 = 12_000;
    let mut par_config = hex(48, 24);
    let mut seq_config = par_config.clone();
    let mut par_rng = StdRng::seed_from_u64(11);
    let mut seq_rng = StdRng::seed_from_u64(11);

    let report = chain.run_parallel(&mut par_config, steps, 1, &mut par_rng);
    assert_eq!(report.steps, steps);
    assert_eq!(report.shards, 1);
    assert_eq!(
        report.deferred, 0,
        "the raster margin keeps short runs far from any footprint clamp"
    );

    // Hand replay of the documented 1-shard contract: per round of n
    // proposals, draw (slot, direction) pairs via PreparedUniform from a
    // clone of the master stream and feed them through the sequential
    // kernel; slots are occupied nodes in particle-index order, a move
    // updates its slot in place, and the master stream advances two jumps
    // per round (shard stream + reconciliation stream).
    let n = seq_config.len() as u64;
    let mut accepted = 0u64;
    let mut counts = [0u64; 9];
    let mut remaining = steps;
    while remaining > 0 {
        let round = n.min(remaining);
        let mut stream = seq_rng.clone();
        seq_rng.jump();
        seq_rng.jump();
        let mut slots: Vec<Node> = (0..seq_config.len())
            .map(|i| seq_config.position_of(i))
            .collect();
        let slot_sampler = PreparedUniform::new(slots.len() as u64);
        let dir_sampler = PreparedUniform::new(6);
        for _ in 0..round {
            let slot = slot_sampler.sample(&mut stream) as usize;
            let dir = DIRECTIONS[dir_sampler.sample(&mut stream) as usize];
            let node = slots[slot];
            let particle = seq_config.index_at(node).unwrap();
            let outcome = chain.propose(&mut seq_config, particle, dir, &mut stream);
            if outcome == StepOutcome::MoveAccepted {
                slots[slot] = node.neighbor(dir);
            }
            accepted += u64::from(outcome.accepted());
            counts[outcome as usize] += 1;
        }
        remaining -= round;
    }

    assert_eq!(report.accepted, accepted);
    assert_eq!(report.outcome_counts, counts);
    assert_same_state(&par_config, &seq_config);
    assert_eq!(
        par_rng.next_u64(),
        seq_rng.next_u64(),
        "caller streams must land at the same position"
    );
}

#[test]
fn multi_shard_parallel_matches_sequential_reference_bit_for_bit() {
    let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
    for (shards, colors, seed) in [(2usize, 1usize, 5u64), (3, 1, 7), (2, 2, 9), (4, 2, 13)] {
        let pcfg = ParallelConfig {
            threads: shards,
            colors,
            ..ParallelConfig::default()
        };
        let mut par_config = hex(60, 30);
        let mut ref_config = par_config.clone();
        let mut par_rng = StdRng::seed_from_u64(seed);
        let mut ref_rng = StdRng::seed_from_u64(seed);

        let par = chain.run_parallel_with(&mut par_config, 6_000, &pcfg, &mut par_rng);
        let reference = run_sharded_reference(&chain, &mut ref_config, 6_000, &pcfg, &mut ref_rng);

        assert_eq!(par, reference, "reports diverged for {shards} shards");
        assert_same_state(&par_config, &ref_config);
        assert!(par_config.audit().is_consistent());
        assert_eq!(
            par_rng.next_u64(),
            ref_rng.next_u64(),
            "caller streams diverged for {shards} shards / {colors} colors"
        );
    }
}

#[test]
fn multi_shard_equivalence_holds_without_swaps_and_in_weak_bias() {
    let pcfg = ParallelConfig {
        threads: 3,
        ..ParallelConfig::default()
    };
    for chain in [
        SeparationChain::without_swaps(Bias::new(4.0, 4.0).unwrap()),
        SeparationChain::new(Bias::new(0.8, 0.6).unwrap()),
    ] {
        let mut par_config = hex(40, 20);
        let mut ref_config = par_config.clone();
        let mut par_rng = StdRng::seed_from_u64(31);
        let mut ref_rng = StdRng::seed_from_u64(31);
        let par = chain.run_parallel_with(&mut par_config, 4_000, &pcfg, &mut par_rng);
        let reference = run_sharded_reference(&chain, &mut ref_config, 4_000, &pcfg, &mut ref_rng);
        assert_eq!(par, reference);
        assert_same_state(&par_config, &ref_config);
        assert_eq!(par_rng.next_u64(), ref_rng.next_u64());
    }
}

#[test]
fn fixed_schedule_runs_are_deterministic_and_seed_sensitive() {
    let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
    let run = |seed: u64| {
        let mut config = hex(48, 24);
        let mut rng = StdRng::seed_from_u64(seed);
        let report = chain.run_parallel(&mut config, 8_000, 2, &mut rng);
        (positions(&config), report)
    };
    let (state_a, report_a) = run(42);
    let (state_b, report_b) = run(42);
    assert_eq!(state_a, state_b, "same seed + schedule must be identical");
    assert_eq!(report_a, report_b);

    let (state_c, report_c) = run(43);
    assert!(
        state_a != state_c || report_a != report_c,
        "different seeds should explore different trajectories"
    );
}

#[test]
fn outcome_counts_conserve_proposals_and_audits_stay_clean() {
    let chain = SeparationChain::new(Bias::new(3.0, 3.0).unwrap());
    let mut config = hex(54, 27);
    let mut rng = StdRng::seed_from_u64(77);
    let mut total = sops_core::ParallelReport::default();
    for chunk in 0..6u64 {
        let report = chain.run_parallel(&mut config, 1_500, 3, &mut rng);
        assert_eq!(report.steps, 1_500, "chunk {chunk} lost proposals");
        assert_eq!(
            report.outcome_counts.iter().sum::<u64>(),
            report.steps,
            "every proposal must land in exactly one outcome class"
        );
        let accepted: u64 = StepOutcome::ALL
            .iter()
            .zip(&report.outcome_counts)
            .filter(|(o, _)| o.accepted())
            .map(|(_, c)| c)
            .sum();
        assert_eq!(report.accepted, accepted);
        let audit = config.audit();
        assert!(
            audit.is_consistent(),
            "audit failed after chunk {chunk}: {audit:?}"
        );
        assert!(config.is_connected(), "chunk {chunk} broke connectivity");
        total.steps += report.steps;
        total.accepted += report.accepted;
        total.deferred += report.deferred;
    }
    assert_eq!(total.steps, 9_000);
    assert_eq!(config.len(), 54);
}
