//! Cross-layer guarantee for the telemetry wrapper: driving a
//! `SeparationChain` through `sops_chains::Instrumented` must produce the
//! exact same state evolution as the bare chain — same configurations,
//! same RNG stream — while its outcome counters account for every step.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sops_chains::{Instrumented, MarkovChain};
use sops_core::{construct, Bias, Configuration, SeparationChain, StepOutcome};

const STEPS: u64 = 50_000;

fn seeded_config(n: usize, seed: u64) -> Configuration {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = construct::hexagonal_spiral(n);
    Configuration::new(construct::bicolor_random(nodes, n / 2, &mut rng)).unwrap()
}

#[test]
fn instrumented_chain_matches_bare_chain_bit_for_bit() {
    let bias = Bias::new(4.0, 4.0).unwrap();
    let bare = SeparationChain::new(bias);
    let inst = Instrumented::new(SeparationChain::new(bias))
        .with_window(1_000)
        .with_observable("perimeter", 5_000, |c: &Configuration| c.perimeter() as f64);

    let mut config_bare = seeded_config(30, 7);
    let mut config_inst = seeded_config(30, 7);
    let mut rng_bare = StdRng::seed_from_u64(42);
    let mut rng_inst = StdRng::seed_from_u64(42);

    let mut accepted_bare = 0u64;
    for _ in 0..STEPS {
        accepted_bare += u64::from(bare.step(&mut config_bare, &mut rng_bare));
    }
    let accepted_inst = inst.run(&mut config_inst, STEPS, &mut rng_inst);

    // Identical state evolution and identical RNG consumption.
    assert_eq!(config_bare.canonical_form(), config_inst.canonical_form());
    assert_eq!(config_bare.edge_count(), config_inst.edge_count());
    assert_eq!(
        config_bare.hetero_edge_count(),
        config_inst.hetero_edge_count()
    );
    assert_eq!(rng_bare.next_u64(), rng_inst.next_u64());

    // The accounting agrees with the bare run and with itself.
    assert_eq!(accepted_inst, accepted_bare);
    let report = inst.report();
    assert_eq!(report.steps, STEPS);
    assert_eq!(report.accepted, accepted_bare);
    assert_eq!(
        report.acceptance_rate(),
        accepted_bare as f64 / STEPS as f64
    );
    let total: u64 = report.counts.iter().map(|&(_, c)| c).sum();
    assert_eq!(total, STEPS, "every step must be classified exactly once");

    // Accepted outcomes decompose into moves and swaps.
    let count = |o: StepOutcome| report.count(o.label_of());
    assert_eq!(
        count(StepOutcome::MoveAccepted) + count(StepOutcome::SwapAccepted),
        accepted_bare
    );
    // A hexagonal-spiral seed at λ = γ = 4 exercises both move types.
    assert!(count(StepOutcome::MoveAccepted) > 0);
    assert!(count(StepOutcome::SwapAccepted) > 0);
    assert_eq!(count(StepOutcome::InvalidStateHold), 0);

    // The observable series sampled on schedule.
    let series = &report.series;
    assert_eq!(series.len(), 1);
    assert_eq!(series[0].name, "perimeter");
    assert_eq!(series[0].total_samples, STEPS / 5_000);
    assert_eq!(
        series[0].samples.last().unwrap().0,
        STEPS,
        "last sample lands on the final sampling boundary"
    );
}

#[test]
fn disabled_instrumentation_still_matches_and_records_nothing() {
    let bias = Bias::new(6.0, 2.0).unwrap();
    let bare = SeparationChain::without_swaps(bias);
    let inst = Instrumented::disabled(SeparationChain::without_swaps(bias));

    let mut config_bare = seeded_config(20, 11);
    let mut config_inst = seeded_config(20, 11);
    let mut rng_bare = StdRng::seed_from_u64(9);
    let mut rng_inst = StdRng::seed_from_u64(9);

    let accepted_bare = bare.run(&mut config_bare, 10_000, &mut rng_bare);
    let accepted_inst = inst.run(&mut config_inst, 10_000, &mut rng_inst);

    assert_eq!(config_bare.canonical_form(), config_inst.canonical_form());
    assert_eq!(rng_bare.next_u64(), rng_inst.next_u64());
    assert_eq!(accepted_inst, accepted_bare);
    let report = inst.report();
    assert_eq!(report.steps, 0, "disabled wrapper must not accumulate");
    assert_eq!(report.counts.iter().map(|&(_, c)| c).sum::<u64>(), 0);
}
