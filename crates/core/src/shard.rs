//! Sharded checkerboard parallel proposal engine.
//!
//! The paper's algorithm is local: a proposal `(ℓ, d)` reads and writes
//! nothing outside its 10-node footprint
//! ([`sops_lattice::pair_footprint_offsets`]), so proposals whose
//! footprints are disjoint compose in any order — the same argument that
//! makes the asynchronous distributed algorithm `A` correct (§3). This
//! module exploits that geometrically: the [`crate::grid`] raster's row
//! range is cut into horizontal **stripes** (row bands, interiors at least
//! 5 rows so a footprint fits), and each stripe becomes a shard that runs
//! proposals concurrently with every other shard of its chromatic phase on
//! a scoped thread pool (`std::thread::scope`, no new dependencies).
//!
//! # Execution model
//!
//! Work proceeds in **rounds** (default length `n` proposals):
//!
//! 1. **Plan.** Stripe boundaries are recomputed from a per-row particle
//!    histogram (balanced banding, deterministic), each particle is
//!    assigned to the stripe holding its row (per-shard *slot lists*, in
//!    particle-index order), and the round's proposals are split across
//!    shards proportionally to their slot counts.
//! 2. **Streams.** Each shard `k` gets its own counted RNG stream: the
//!    caller's generator jumped `k` times ([`rand::rngs::StdRng::jump`],
//!    2¹²⁸ apart — the parallel analogue of `sops-runtime`'s per-attempt
//!    `seeded_attempt` streams). Stream `S` is reserved for the
//!    reconciliation pass, and the caller's generator is left jumped
//!    `S + 1` times, so no stream ever overlaps a later round's.
//! 3. **Shard kernels.** All shards of a phase (`shard_index % colors`)
//!    run concurrently. Each worker owns a disjoint `&mut` row band of the
//!    raster (safe Rust: rows are contiguous, so bands come from
//!    `split_at_mut`) plus its slot list, and repeatedly draws a slot
//!    (uniform occupied node) and a direction. Proposals whose footprint
//!    lies fully inside the stripe *and* the raster commit directly to the
//!    band and append a change-log entry carrying the precomputed
//!    counter deltas; any footprint that crosses a stripe seam or the
//!    raster edge is **deferred** — recorded untouched and unevaluated, so
//!    no cross-shard conflict can ever commit.
//! 4. **Merge.** The main thread replays the change logs in shard order
//!    through the existing checked-arithmetic paths (occupancy map,
//!    position table, edge/hetero counters; the raster is already
//!    current), then replays every deferred proposal sequentially through
//!    the live [`SeparationChain::propose`] kernel with the reconciliation
//!    stream.
//!
//! # RNG draw-order contract (sharded mode)
//!
//! Within one shard's stream, each proposal consumes: one slot draw
//! (`PreparedUniform(slot_count)`), one direction draw
//! (`PreparedUniform(6)`), then — only for non-deferred proposals that
//! reach a Metropolis filter with ratio < 1 — one `f64` draw, exactly when
//! the sequential kernel would. Slot counts are constant within a round
//! (moves update a slot in place, swaps exchange colors on fixed nodes),
//! so the samplers never re-prepare mid-round. Deferred proposals consume
//! only their two pair draws from the shard stream; their evaluation draws
//! come from the reconciliation stream, in shard-then-proposal order.
//!
//! With **one shard** this contract reduces to: draw (slot, direction)
//! pairs from the caller's stream and feed them through
//! [`SeparationChain::propose`] — bit-for-bit, including RNG stream
//! position (pinned by the `shard_equivalence` suite). Note slots are
//! occupied *nodes*, not particle indices: the node↔particle bijection
//! makes the activation distribution identical, but after a swap the same
//! slot denotes the other particle, so this trajectory intentionally
//! differs from [`SeparationChain::step_detailed`]'s particle-index draws.
//! Both are exact samplers of the same chain.
//!
//! # Determinism
//!
//! The trajectory is a pure function of (initial state, seed, shard plan):
//! same seed + same [`ParallelConfig`] + same thread count ⇒ identical
//! final state and report, independent of OS scheduling — each shard's
//! computation depends only on its own stripe's round-start content and
//! its own stream, and merge order is fixed. Different shard counts (or
//! explicit boundaries) are *different schedules* and yield different —
//! equally valid — trajectories, exactly as reseeding would.
//! [`run_sharded_reference`] replays the identical schedule
//! single-threaded and is the equivalence oracle for multi-shard runs.
//!
//! # What can go wrong
//!
//! * No raster (system too sparse to rasterize): the engine degrades to
//!   sequential [`SeparationChain::step_detailed`] stepping, counted in
//!   [`ParallelReport::fallback_steps`].
//! * Corrupt tracked counters: shard workers never see them (they work on
//!   raw raster bytes), so corruption surfaces in the merge pass — which
//!   **panics**, because the raster half of the transition is already
//!   applied and there is no untouched state to hold. The sequential
//!   kernels' `InvalidStateHold` soft-fail is only reachable through the
//!   reconciliation pass here.

use rand::rngs::StdRng;
use rand::PreparedUniform;
use sops_lattice::{
    pair_footprint_bounds, ring_offsets, Node, DIRECTIONS, RING_FROM_SIDE, RING_TO_SIDE,
};

use crate::config::RingGather;
use crate::grid::{self, ColorGrid};
use crate::{properties, Configuration, SeparationChain, StepOutcome};

/// Minimum stripe height in rows: a footprint reaches at most 2 rows from
/// its source in either direction (`sops_lattice::FOOTPRINT_REACH`), so
/// stripes shorter than 5 rows have an empty interior and defer everything.
pub const MIN_STRIPE_ROWS: u32 = 5;

/// Shard-schedule parameters for [`SeparationChain::run_parallel_with`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads per phase. Also the default shard count.
    pub threads: usize,
    /// Stripe count; `0` means "same as `threads`". Clamped so every
    /// stripe keeps at least [`MIN_STRIPE_ROWS`] rows.
    pub shards: usize,
    /// Chromatic phases per round: shard `k` runs in phase `k % colors`.
    /// Deferral already makes same-phase shards conflict-free, so `1`
    /// (all shards concurrent) is sound and fastest; higher values
    /// reproduce the classic checkerboard schedule (and halve peak
    /// parallelism per extra color).
    pub colors: usize,
    /// Proposals per round between reconciliation passes; `0` means `n`.
    pub round_proposals: u64,
    /// Explicit interior stripe boundary rows (each `lo < b < hi` of the
    /// raster's row range, strictly ascending). Overrides `shards` and the
    /// balanced banding, and skips the [`MIN_STRIPE_ROWS`] clamp — the
    /// seam-placement test hook. Invalid boundaries panic.
    pub boundaries: Option<Vec<i32>>,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 1,
            shards: 0,
            colors: 1,
            round_proposals: 0,
            boundaries: None,
        }
    }
}

impl ParallelConfig {
    /// The default schedule for `threads` worker threads (one stripe per
    /// thread, one phase).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
            ..ParallelConfig::default()
        }
    }
}

/// Statistics from a sharded run. Outcome counts travel through the same
/// nine [`StepOutcome`] classes as sequential stepping, so `steps` always
/// equals the sum of `outcome_counts` — every proposal, deferred or not,
/// is accounted exactly once (the conservation law the equivalence suite
/// checks).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParallelReport {
    /// Proposals evaluated (= the `steps` argument).
    pub steps: u64,
    /// Proposals that changed the state.
    pub accepted: u64,
    /// Proposals deferred to a reconciliation pass because their footprint
    /// crossed a stripe seam or the raster edge.
    pub deferred: u64,
    /// Rounds executed (each ends with one reconciliation pass).
    pub rounds: u64,
    /// Largest shard count any round actually used.
    pub shards: usize,
    /// Steps run through the sequential kernel because no raster was
    /// available.
    pub fallback_steps: u64,
    /// Per-class outcome totals, indexed like [`StepOutcome::ALL`].
    pub outcome_counts: [u64; 9],
}

impl ParallelReport {
    /// Total occurrences of `outcome`.
    #[must_use]
    pub fn count(&self, outcome: StepOutcome) -> u64 {
        self.outcome_counts[outcome as usize]
    }

    fn tally(&mut self, outcome: StepOutcome) {
        self.steps += 1;
        self.accepted += u64::from(outcome.accepted());
        self.outcome_counts[outcome as usize] += 1;
    }
}

/// One stripe of the schedule: rows `lo ≤ y < hi` plus this round's slot
/// list and proposal quota.
struct Stripe {
    lo: i32,
    hi: i32,
    slots: Vec<Node>,
    quota: u64,
}

/// A change one shard committed to its raster band, with the counter
/// deltas it evaluated mid-round (recomputing them after the round, when
/// other in-stripe changes have landed, would be wrong).
enum LogEntry {
    Move {
        from: Node,
        to: Node,
        d_edges: i64,
        d_hetero: i64,
    },
    Swap {
        a: Node,
        b: Node,
        d_hetero: i64,
    },
}

/// Everything a shard worker hands back to the merge pass.
struct ShardOutput {
    log: Vec<LogEntry>,
    /// `(slot index, direction index)` of each deferred proposal, in draw
    /// order. Resolved against the slot list as of its reconciliation
    /// turn (accepted deferred moves update their slot): the deferred
    /// activation belongs to whichever particle occupies that slot when
    /// its turn comes, which is exactly the particle a sequential replay
    /// of the schedule would find there.
    deferred: Vec<(u32, u8)>,
    counts: [u64; 9],
    slots: Vec<Node>,
}

/// A worker's private window into the raster: a `&mut` band of whole rows.
/// All indexing trusts the footprint check — every node a non-deferred
/// proposal touches is inside the band, so plain slice indexing (panic on
/// violation, no unsafe) is both the fast path and the safety net.
struct StripeView<'a> {
    cells: &'a mut [u8],
    stride: usize,
    min_x: i32,
    lo_y: i32,
    /// Inclusive footprint clamp, in lattice coordinates (i64 so that
    /// `position + reach` can never overflow at the i32 extremes).
    x_lo: i64,
    x_hi: i64,
    y_lo: i64,
    y_hi: i64,
}

impl StripeView<'_> {
    #[inline]
    fn idx(&self, node: Node) -> usize {
        (node.y - self.lo_y) as usize * self.stride + (node.x - self.min_x) as usize
    }

    #[inline]
    fn code(&self, node: Node) -> u8 {
        self.cells[self.idx(node)]
    }

    #[inline]
    fn set(&mut self, node: Node, code: u8) {
        let i = self.idx(node);
        self.cells[i] = code;
    }
}

impl SeparationChain {
    /// Runs `steps` proposals on `threads` worker threads (one stripe per
    /// thread) and returns the merged report. Equivalent to
    /// [`SeparationChain::run_parallel_with`] with
    /// [`ParallelConfig::with_threads`].
    ///
    /// The trajectory is deterministic in (state, seed, `threads`); see
    /// the module docs for the full contract, and note that different
    /// thread counts are different schedules with different (equally
    /// valid) trajectories.
    pub fn run_parallel(
        &self,
        config: &mut Configuration,
        steps: u64,
        threads: usize,
        rng: &mut StdRng,
    ) -> ParallelReport {
        self.run_parallel_with(config, steps, &ParallelConfig::with_threads(threads), rng)
    }

    /// Runs `steps` proposals under an explicit shard schedule.
    ///
    /// # Panics
    ///
    /// Panics on invalid explicit `boundaries`, if a worker thread dies,
    /// or if the merge pass detects counter corruption (see the module
    /// docs — at that point the raster half of a transition is already
    /// applied, so there is no consistent state to return).
    pub fn run_parallel_with(
        &self,
        config: &mut Configuration,
        steps: u64,
        pcfg: &ParallelConfig,
        rng: &mut StdRng,
    ) -> ParallelReport {
        let mut report = ParallelReport::default();
        let mut remaining = steps;
        while remaining > 0 {
            if config.raster().is_none() {
                // Too sparse to rasterize: sequential degradation.
                for _ in 0..remaining {
                    let outcome = self.step_detailed(config, rng);
                    report.tally(outcome);
                }
                report.fallback_steps += remaining;
                break;
            }
            let round_len = if pcfg.round_proposals > 0 {
                pcfg.round_proposals.min(remaining)
            } else {
                (config.len() as u64).min(remaining)
            };
            let mut stripes = plan_round(config, pcfg, round_len);
            let colors = pcfg.colors.max(1);

            // Per-shard streams now, reconciliation stream after them, and
            // the caller's generator ends up past all of them.
            let mut streams = Vec::with_capacity(stripes.len());
            for _ in 0..stripes.len() {
                streams.push(rng.clone());
                rng.jump();
            }
            let mut recon_rng = rng.clone();
            rng.jump();

            report.rounds += 1;
            report.shards = report.shards.max(stripes.len());

            let mut outputs: Vec<Option<ShardOutput>> = Vec::new();
            outputs.resize_with(stripes.len(), || None);

            {
                let raster = config
                    .raster_mut()
                    .expect("raster checked present at round start");
                let stride = raster.width() as usize;
                let min_x = raster.min_x();
                let min_y = raster.min_y();
                let x_hi = i64::from(min_x) + i64::from(raster.width()) - 1;
                for phase in 0..colors {
                    run_phase(
                        self,
                        raster,
                        &mut stripes,
                        &streams,
                        &mut outputs,
                        phase,
                        colors,
                        stride,
                        min_x,
                        min_y,
                        x_hi,
                    );
                }
            }

            // Merge pass: change logs in shard order, through the checked
            // counter paths. The raster is already current.
            for output in outputs.iter().flatten() {
                for entry in &output.log {
                    match *entry {
                        LogEntry::Move {
                            from,
                            to,
                            d_edges,
                            d_hetero,
                        } => config.apply_sharded_move(from, to, d_edges, d_hetero),
                        LogEntry::Swap { a, b, d_hetero } => {
                            config.apply_sharded_swap(a, b, d_hetero);
                        }
                    }
                }
                for (outcome, &count) in StepOutcome::ALL.iter().zip(&output.counts) {
                    report.steps += count;
                    report.outcome_counts[*outcome as usize] += count;
                    if outcome.accepted() {
                        report.accepted += count;
                    }
                }
            }

            // Reconciliation pass: every deferred proposal, in shard then
            // draw order, through the live sequential kernel. Slot
            // bindings stay live — an accepted deferred move updates its
            // slot, so later deferred proposals in the same round resolve
            // against the current occupancy.
            for output in outputs.iter_mut().flatten() {
                let deferred = std::mem::take(&mut output.deferred);
                for (slot, dir) in deferred {
                    let node = output.slots[slot as usize];
                    let dir = DIRECTIONS[dir as usize];
                    let particle = config
                        .index_at(node)
                        .expect("a slot node is occupied by construction");
                    let outcome = self.propose(config, particle, dir, &mut recon_rng);
                    if outcome == StepOutcome::MoveAccepted {
                        output.slots[slot as usize] = node.neighbor(dir);
                    }
                    report.tally(outcome);
                    report.deferred += 1;
                }
            }

            remaining -= round_len;
        }
        report
    }
}

/// Runs the identical shard schedule single-threaded: same plan, same
/// streams, same deferral rule, but every non-deferred proposal goes
/// through the live sequential [`SeparationChain::propose`] kernel in
/// shard order instead of a concurrent stripe kernel.
///
/// Because same-phase stripes only ever touch their own rows, the
/// concurrent execution is bit-for-bit equal to this sequential replay —
/// which makes this function the multi-shard equivalence oracle (the
/// sharded analogue of `propose_reference`): `run_parallel_with` and
/// `run_sharded_reference` must produce identical states, reports, and
/// RNG positions for any (state, seed, schedule).
pub fn run_sharded_reference(
    chain: &SeparationChain,
    config: &mut Configuration,
    steps: u64,
    pcfg: &ParallelConfig,
    rng: &mut StdRng,
) -> ParallelReport {
    let mut report = ParallelReport::default();
    let mut remaining = steps;
    while remaining > 0 {
        if config.raster().is_none() {
            for _ in 0..remaining {
                let outcome = chain.step_detailed(config, rng);
                report.tally(outcome);
            }
            report.fallback_steps += remaining;
            break;
        }
        let round_len = if pcfg.round_proposals > 0 {
            pcfg.round_proposals.min(remaining)
        } else {
            (config.len() as u64).min(remaining)
        };
        let mut stripes = plan_round(config, pcfg, round_len);
        let mut streams = Vec::with_capacity(stripes.len());
        for _ in 0..stripes.len() {
            streams.push(rng.clone());
            rng.jump();
        }
        let mut recon_rng = rng.clone();
        rng.jump();

        report.rounds += 1;
        report.shards = report.shards.max(stripes.len());

        // Round-start raster extent: the parallel kernel clamps footprints
        // against it, and in-stripe commits can never change it mid-round.
        let (x_lo, x_hi) = {
            let raster = config.raster().expect("raster checked above");
            let lo = i64::from(raster.min_x());
            (lo, lo + i64::from(raster.width()) - 1)
        };

        let mut deferred: Vec<Vec<(u32, u8)>> = vec![Vec::new(); stripes.len()];
        for (k, stripe) in stripes.iter_mut().enumerate() {
            if stripe.quota == 0 {
                continue;
            }
            let stream = &mut streams[k];
            let slot_sampler = PreparedUniform::new(stripe.slots.len() as u64);
            let dir_sampler = PreparedUniform::new(6);
            for _ in 0..stripe.quota {
                let slot = slot_sampler.sample(stream) as usize;
                let dir_idx = dir_sampler.sample(stream) as usize;
                let dir = DIRECTIONS[dir_idx];
                let from = stripe.slots[slot];
                if footprint_escapes(
                    from,
                    dir,
                    x_lo,
                    x_hi,
                    i64::from(stripe.lo),
                    i64::from(stripe.hi) - 1,
                ) {
                    deferred[k].push((slot as u32, dir_idx as u8));
                    continue;
                }
                let particle = config
                    .index_at(from)
                    .expect("a slot node is occupied by construction");
                let outcome = chain.propose(config, particle, dir, stream);
                if outcome == StepOutcome::MoveAccepted {
                    stripe.slots[slot] = from.neighbor(dir);
                }
                report.tally(outcome);
            }
        }

        for (k, stripe) in stripes.iter_mut().enumerate() {
            for &(slot, dir) in &deferred[k] {
                let node = stripe.slots[slot as usize];
                let dir = DIRECTIONS[dir as usize];
                let particle = config
                    .index_at(node)
                    .expect("a slot node is occupied by construction");
                let outcome = chain.propose(config, particle, dir, &mut recon_rng);
                if outcome == StepOutcome::MoveAccepted {
                    stripe.slots[slot as usize] = node.neighbor(dir);
                }
                report.tally(outcome);
                report.deferred += 1;
            }
        }
        remaining -= round_len;
    }
    report
}

/// The deferral predicate, shared verbatim by the parallel kernel and the
/// reference replay: true iff the proposal's 10-node footprint leaves the
/// inclusive window `[x_lo, x_hi] × [y_lo, y_hi]`.
#[inline]
fn footprint_escapes(
    from: Node,
    dir: sops_lattice::Direction,
    x_lo: i64,
    x_hi: i64,
    y_lo: i64,
    y_hi: i64,
) -> bool {
    let fb = pair_footprint_bounds(dir);
    let fx = i64::from(from.x);
    let fy = i64::from(from.y);
    fx + i64::from(fb.min_dx) < x_lo
        || fx + i64::from(fb.max_dx) > x_hi
        || fy + i64::from(fb.min_dy) < y_lo
        || fy + i64::from(fb.max_dy) > y_hi
}

/// Computes this round's stripes: boundaries, slot lists in particle-index
/// order, and proportional proposal quotas summing to exactly `round_len`.
fn plan_round(config: &Configuration, pcfg: &ParallelConfig, round_len: u64) -> Vec<Stripe> {
    let raster = config.raster().expect("planning requires a raster");
    let r0 = raster.min_y();
    let r1 = r0 + raster.height() as i32;
    let bounds = match &pcfg.boundaries {
        Some(cuts) => {
            let mut bounds = Vec::with_capacity(cuts.len() + 1);
            let mut lo = r0;
            for &cut in cuts {
                assert!(
                    cut > lo && cut < r1,
                    "stripe boundary {cut} outside ({lo}, {r1})"
                );
                bounds.push((lo, cut));
                lo = cut;
            }
            bounds.push((lo, r1));
            bounds
        }
        None => {
            let want = if pcfg.shards > 0 {
                pcfg.shards
            } else {
                pcfg.threads.max(1)
            };
            let max_shards = (raster.height() / MIN_STRIPE_ROWS).max(1) as usize;
            plan_balanced_stripes(config, r0, raster.height(), want.clamp(1, max_shards))
        }
    };

    let mut stripes: Vec<Stripe> = bounds
        .into_iter()
        .map(|(lo, hi)| Stripe {
            lo,
            hi,
            slots: Vec::new(),
            quota: 0,
        })
        .collect();

    // Slot lists in particle-index order: with one stripe this makes slot
    // index == particle index, the anchor of the 1-shard equivalence.
    for i in 0..config.len() {
        let p = config.position_of(i);
        let k = stripes
            .iter()
            .position(|s| p.y >= s.lo && p.y < s.hi)
            .expect("every particle row lies in exactly one stripe");
        stripes[k].slots.push(p);
    }

    // Quotas proportional to slot counts, largest-remainder-free variant:
    // floor everything, then hand the (< #nonempty) leftovers to nonempty
    // stripes in index order. Deterministic and sums exactly.
    let total = config.len() as u64;
    let mut assigned = 0u64;
    for stripe in &mut stripes {
        stripe.quota =
            ((u128::from(round_len) * stripe.slots.len() as u128) / u128::from(total)) as u64;
        assigned += stripe.quota;
    }
    let mut leftover = round_len - assigned;
    for stripe in &mut stripes {
        if leftover == 0 {
            break;
        }
        if !stripe.slots.is_empty() {
            stripe.quota += 1;
            leftover -= 1;
        }
    }
    debug_assert_eq!(leftover, 0, "quota distribution must exhaust the round");
    stripes
}

/// Balanced banding: cuts the raster's `height` rows into `shards` stripes
/// of ≥ [`MIN_STRIPE_ROWS`] rows whose particle counts are as equal as a
/// row-aligned cut allows, by walking the per-row particle histogram.
fn plan_balanced_stripes(
    config: &Configuration,
    r0: i32,
    height: u32,
    shards: usize,
) -> Vec<(i32, i32)> {
    let r1 = r0 + height as i32;
    if shards <= 1 {
        return vec![(r0, r1)];
    }
    let height = height as usize;
    let min_rows = MIN_STRIPE_ROWS as usize;
    let mut hist = vec![0u64; height];
    for i in 0..config.len() {
        hist[(config.position_of(i).y - r0) as usize] += 1;
    }
    let total = config.len() as u64;
    let mut bounds = Vec::with_capacity(shards);
    let mut lo = 0usize;
    let mut row = 0usize;
    let mut cum = 0u64;
    for k in 0..shards - 1 {
        let target = total * (k as u64 + 1) / shards as u64;
        let min_hi = lo + min_rows;
        let max_hi = height - min_rows * (shards - 1 - k);
        let mut hi = min_hi;
        while row < hi {
            cum += hist[row];
            row += 1;
        }
        while hi < max_hi && cum < target {
            cum += hist[row];
            row += 1;
            hi += 1;
        }
        bounds.push((r0 + lo as i32, r0 + hi as i32));
        lo = hi;
    }
    bounds.push((r0 + lo as i32, r1));
    bounds
}

/// Runs every stripe of one chromatic phase concurrently: scoped threads
/// over disjoint `split_at_mut` row bands of the raster (inline on the
/// calling thread when the phase has a single busy stripe — with one
/// shard, the engine spawns no threads at all).
#[allow(clippy::too_many_arguments)]
fn run_phase(
    chain: &SeparationChain,
    raster: &mut ColorGrid,
    stripes: &mut [Stripe],
    streams: &[StdRng],
    outputs: &mut [Option<ShardOutput>],
    phase: usize,
    colors: usize,
    stride: usize,
    min_x: i32,
    min_y: i32,
    x_hi: i64,
) {
    let mut jobs: Vec<(usize, StripeView<'_>, Vec<Node>, u64, StdRng)> = Vec::new();
    let mut rest: &mut [u8] = raster.cells_mut();
    let mut consumed_rows = 0usize;
    for (k, stripe) in stripes.iter_mut().enumerate() {
        let rows = (stripe.hi - stripe.lo) as usize;
        debug_assert_eq!(consumed_rows, (stripe.lo - min_y) as usize);
        let (band, tail) = rest.split_at_mut(rows * stride);
        rest = tail;
        consumed_rows += rows;
        if k % colors != phase || stripe.quota == 0 {
            continue;
        }
        let view = StripeView {
            cells: band,
            stride,
            min_x,
            lo_y: stripe.lo,
            x_lo: i64::from(min_x),
            x_hi,
            y_lo: i64::from(stripe.lo),
            y_hi: i64::from(stripe.hi) - 1,
        };
        jobs.push((
            k,
            view,
            std::mem::take(&mut stripe.slots),
            stripe.quota,
            streams[k].clone(),
        ));
    }

    let finished: Vec<(usize, ShardOutput)> = if jobs.len() > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|(k, view, slots, quota, stream)| {
                    scope.spawn(move || (k, run_stripe(chain, view, slots, quota, stream)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
    } else {
        jobs.into_iter()
            .map(|(k, view, slots, quota, stream)| {
                (k, run_stripe(chain, view, slots, quota, stream))
            })
            .collect()
    };
    for (k, output) in finished {
        // Hand the (possibly updated) slot list back for the next phase's
        // bookkeeping and deferred resolution.
        stripes[k].slots = output.slots.clone();
        outputs[k] = Some(output);
    }
}

/// The per-shard kernel: a fused scalar proposal loop over the stripe's
/// raster band, draw-for-draw and guard-for-guard identical to
/// [`SeparationChain::propose`] restricted to in-stripe footprints.
fn run_stripe(
    chain: &SeparationChain,
    mut view: StripeView<'_>,
    mut slots: Vec<Node>,
    quota: u64,
    mut rng: StdRng,
) -> ShardOutput {
    let mut out = ShardOutput {
        log: Vec::new(),
        deferred: Vec::new(),
        counts: [0; 9],
        slots: Vec::new(),
    };
    if quota > 0 {
        assert!(!slots.is_empty(), "a nonzero quota requires occupied slots");
        let slot_sampler = PreparedUniform::new(slots.len() as u64);
        let dir_sampler = PreparedUniform::new(6);
        for _ in 0..quota {
            let slot = slot_sampler.sample(&mut rng) as usize;
            let dir_idx = dir_sampler.sample(&mut rng) as usize;
            let dir = DIRECTIONS[dir_idx];
            let from = slots[slot];

            if footprint_escapes(from, dir, view.x_lo, view.x_hi, view.y_lo, view.y_hi) {
                out.deferred.push((slot as u32, dir_idx as u8));
                continue;
            }

            let to = from.neighbor(dir);
            let target_code = view.code(to);
            let outcome = if target_code != 0 {
                // Swap branch, in `propose`'s exact order: the two 1-probe
                // holds first, no ring gather, no filter draw.
                let own_code = view.code(from);
                if target_code == own_code {
                    StepOutcome::SameColorHold
                } else if !chain.swaps_enabled() {
                    StepOutcome::TargetOccupiedHold
                } else {
                    let ci = grid::decode(own_code);
                    let cj = grid::decode(target_code);
                    let ring = gather(&view, from, dir);
                    let gain_i =
                        ring.colored_in(RING_TO_SIDE, ci) - ring.colored_in(RING_FROM_SIDE, ci);
                    let gain_j =
                        ring.colored_in(RING_FROM_SIDE, cj) - ring.colored_in(RING_TO_SIDE, cj);
                    if chain.metropolis_swap(gain_i + gain_j, &mut rng) {
                        view.set(from, target_code);
                        view.set(to, own_code);
                        out.log.push(LogEntry::Swap {
                            a: from,
                            b: to,
                            d_hetero: -i64::from(gain_i + gain_j),
                        });
                        StepOutcome::SwapAccepted
                    } else {
                        StepOutcome::SwapRejectedMetropolis
                    }
                }
            } else {
                let ring = gather(&view, from, dir);
                let e = ring.occupied_in(RING_FROM_SIDE);
                if e == 5 {
                    StepOutcome::MoveRejectedFiveNeighbors
                } else if !properties::MOVEMENT_ALLOWED[ring.occupancy as usize] {
                    StepOutcome::MoveRejectedProperty
                } else {
                    let own_code = view.code(from);
                    let color = grid::decode(own_code);
                    let e_new = ring.occupied_in(RING_TO_SIDE);
                    let ei = ring.colored_in(RING_FROM_SIDE, color);
                    let ei_new = ring.colored_in(RING_TO_SIDE, color);
                    let de = e_new - e;
                    let dei = ei_new - ei;
                    if chain.metropolis_move(de, dei, &mut rng) {
                        view.set(from, 0);
                        view.set(to, own_code);
                        slots[slot] = to;
                        out.log.push(LogEntry::Move {
                            from,
                            to,
                            d_edges: i64::from(de),
                            d_hetero: i64::from(de - dei),
                        });
                        StepOutcome::MoveAccepted
                    } else {
                        StepOutcome::MoveRejectedMetropolis
                    }
                }
            };
            out.counts[outcome as usize] += 1;
        }
    }
    out.slots = slots;
    out
}

/// Ring gather against the stripe band: eight direct byte loads with no
/// range checks — the footprint check already proved every ring node is
/// in-band. Shares [`RingGather::from_codes`] with the sequential raster
/// path so the decode is bit-for-bit common.
#[inline]
fn gather(view: &StripeView<'_>, from: Node, dir: sops_lattice::Direction) -> RingGather {
    let offsets = ring_offsets(dir);
    RingGather::from_codes(core::array::from_fn(|k| view.code(from + offsets[k])))
}
