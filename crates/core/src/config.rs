//! Particle-system configurations on the triangular lattice.

use core::fmt;

use sops_lattice::{ring_offsets, Direction, Node, NodeMap, NodeSet, DIRECTIONS};

use crate::error::{AuditReport, AuditViolation, ChainStateError, RepairOutcome};
use crate::grid::{self, ColorGrid};
use crate::{Color, ConfigError};

/// Map payload: which particle sits on a node, and its color.
///
/// The color is duplicated here (it also lives in `Configuration::colors`)
/// so the chain's hot path resolves *color at node* with a single probe.
#[derive(Clone, Copy, Debug)]
struct Slot {
    index: u32,
    color: Color,
}

/// A 2-heterogeneous (or k-heterogeneous) particle-system configuration: a
/// set of colored particles occupying distinct nodes of `G_Δ`.
///
/// The configuration incrementally maintains its total edge count `e(σ)` and
/// heterogeneous edge count `h(σ)` across [`Configuration::move_particle`]
/// and [`Configuration::swap`] — the two elementary transitions of chain `M`
/// — so the chain never rescans the system. For connected hole-free
/// configurations the perimeter follows from the identity
/// `p(σ) = 3n − e(σ) − 3` ([`Configuration::perimeter`]); an independent
/// boundary-walk computation ([`Configuration::boundary_walk_length`]) is
/// provided for cross-validation and for configurations that still have
/// holes.
///
/// # Example
///
/// ```
/// use sops_core::{Color, Configuration};
/// use sops_lattice::Node;
///
/// // A triangle: two c1 particles and one c2 particle.
/// let config = Configuration::new([
///     (Node::new(0, 0), Color::C1),
///     (Node::new(1, 0), Color::C1),
///     (Node::new(0, 1), Color::C2),
/// ])?;
/// assert_eq!(config.len(), 3);
/// assert_eq!(config.edge_count(), 3);
/// assert_eq!(config.hetero_edge_count(), 2);
/// assert_eq!(config.perimeter(), 3); // 3·3 − 3 − 3
/// assert!(config.is_connected() && !config.has_holes());
/// # Ok::<(), sops_core::ConfigError>(())
/// ```
#[derive(Clone)]
pub struct Configuration {
    occupancy: NodeMap<Slot>,
    /// Dense raster cache of `occupancy` (see [`crate::grid`]); `None` when
    /// the system is too spread out to rasterize, in which case every read
    /// path probes the map instead.
    grid: Option<ColorGrid>,
    positions: Vec<Node>,
    colors: Vec<Color>,
    edges: u64,
    hetero: u64,
    /// Number of raster rebuilds forced by a particle crossing the margin
    /// (see [`crate::grid`]'s anti-thrash policy); cheap drift telemetry
    /// and the regression hook for the rebuild-hysteresis tests.
    raster_rebuilds: u64,
}

impl Configuration {
    /// Creates a configuration from `(node, color)` pairs.
    ///
    /// Connectivity is **not** required here — initial configurations with
    /// holes are legal chain inputs and some analyses need disconnected
    /// states — but [`crate::SeparationChain`] requires
    /// [`Configuration::is_connected`] to hold for its invariants.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::Empty`] if no particles are given;
    /// * [`ConfigError::DuplicateNode`] if two particles share a node.
    pub fn new<I>(particles: I) -> Result<Self, ConfigError>
    where
        I: IntoIterator<Item = (Node, Color)>,
    {
        let particles: Vec<(Node, Color)> = particles.into_iter().collect();
        if particles.is_empty() {
            return Err(ConfigError::Empty);
        }
        let mut occupancy = NodeMap::with_capacity(particles.len());
        let mut positions = Vec::with_capacity(particles.len());
        let mut colors = Vec::with_capacity(particles.len());
        for (i, &(node, color)) in particles.iter().enumerate() {
            let slot = Slot {
                index: i as u32,
                color,
            };
            if occupancy.insert(node, slot).is_some() {
                return Err(ConfigError::DuplicateNode(node));
            }
            positions.push(node);
            colors.push(color);
        }
        let mut config = Configuration {
            grid: ColorGrid::build(&particles),
            occupancy,
            positions,
            colors,
            edges: 0,
            hetero: 0,
            raster_rebuilds: 0,
        };
        let (e, h) = config.recount();
        config.edges = e;
        config.hetero = h;
        Ok(config)
    }

    /// Number of particles `n`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the configuration is empty (never true: construction rejects
    /// empty systems).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Iterates over `(node, color)` of every particle, in particle-index
    /// order.
    pub fn particles(&self) -> impl Iterator<Item = (Node, Color)> + '_ {
        self.positions
            .iter()
            .zip(&self.colors)
            .map(|(&n, &c)| (n, c))
    }

    /// The location of particle `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ n`.
    #[inline]
    #[must_use]
    pub fn position_of(&self, index: usize) -> Node {
        self.positions[index]
    }

    /// The color of particle `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ n`.
    #[inline]
    #[must_use]
    pub fn color_of(&self, index: usize) -> Color {
        self.colors[index]
    }

    /// The color of the particle at `node`, or `None` if unoccupied.
    #[inline]
    #[must_use]
    pub fn color_at(&self, node: Node) -> Option<Color> {
        match &self.grid {
            Some(g) => {
                let code = g.code(node);
                (code != 0).then(|| grid::decode(code))
            }
            None => self.occupancy.get(node).map(|s| s.color),
        }
    }

    /// The index of the particle at `node`, or `None` if unoccupied.
    #[inline]
    #[must_use]
    pub fn index_at(&self, node: Node) -> Option<usize> {
        self.occupancy.get(node).map(|s| s.index as usize)
    }

    /// Whether `node` is occupied.
    #[inline]
    #[must_use]
    pub fn is_occupied(&self, node: Node) -> bool {
        match &self.grid {
            Some(g) => g.code(node) != 0,
            None => self.occupancy.contains(node),
        }
    }

    /// Number of particles of each color class present, indexed by color id.
    #[must_use]
    pub fn color_counts(&self) -> Vec<usize> {
        let k = self
            .colors
            .iter()
            .map(|c| c.index() as usize + 1)
            .max()
            .unwrap_or(0);
        let mut counts = vec![0usize; k];
        for c in &self.colors {
            counts[c.index() as usize] += 1;
        }
        counts
    }

    /// Total number of configuration edges `e(σ)` (lattice edges with both
    /// endpoints occupied). Maintained incrementally.
    #[inline]
    #[must_use]
    pub fn edge_count(&self) -> u64 {
        self.edges
    }

    /// Number of heterogeneous edges `h(σ)` (endpoints of different colors).
    /// Maintained incrementally.
    #[inline]
    #[must_use]
    pub fn hetero_edge_count(&self) -> u64 {
        self.hetero
    }

    /// Number of homogeneous edges `a(σ) = e(σ) − h(σ)`.
    #[inline]
    #[must_use]
    pub fn homo_edge_count(&self) -> u64 {
        self.edges - self.hetero
    }

    /// The perimeter `p(σ) = 3n − e(σ) − 3` of the configuration.
    ///
    /// The identity holds exactly for connected hole-free configurations
    /// (Lemma 9's proof, citing the compression paper); for configurations
    /// with holes it exceeds the boundary-walk length by the hole boundaries.
    /// The degenerate 1-particle case (where `3n − 3 = 0 = e`) yields 0.
    ///
    /// Every consistent configuration satisfies `e(σ) ≤ 3n − 3`, so the
    /// subtraction cannot underflow unless the tracked edge counter is
    /// corrupt. That case trips a `debug_assert` and returns 0 in release
    /// builds; [`Configuration::audit`] reports it as
    /// [`crate::AuditViolation::PerimeterUnderflow`] rather than letting a
    /// silently clamped 0 masquerade as a fully-compressed configuration.
    #[inline]
    #[must_use]
    pub fn perimeter(&self) -> u64 {
        let bound = 3 * self.positions.len() as u64;
        match self
            .edges
            .checked_add(3)
            .and_then(|held| bound.checked_sub(held))
        {
            Some(p) => p,
            None => {
                debug_assert!(
                    false,
                    "perimeter identity underflow: e = {} exceeds 3n − 3 = {}",
                    self.edges,
                    bound.saturating_sub(3)
                );
                0
            }
        }
    }

    /// Number of occupied neighbors of `node` (whether or not `node` itself
    /// is occupied).
    #[inline]
    #[must_use]
    pub fn occupied_neighbors(&self, node: Node) -> i32 {
        let mut count = 0;
        for d in DIRECTIONS {
            count += i32::from(self.is_occupied(node.neighbor(d)));
        }
        count
    }

    /// Number of occupied neighbors of `node`, not counting `exclude`.
    #[inline]
    #[must_use]
    pub fn occupied_neighbors_excluding(&self, node: Node, exclude: Node) -> i32 {
        let mut count = 0;
        for d in DIRECTIONS {
            let m = node.neighbor(d);
            if m != exclude && self.is_occupied(m) {
                count += 1;
            }
        }
        count
    }

    /// Number of neighbors of `node` occupied by particles of `color`
    /// (`|N_i(ℓ)|` in the paper's notation).
    #[inline]
    #[must_use]
    pub fn colored_neighbors(&self, node: Node, color: Color) -> i32 {
        let mut count = 0;
        for d in DIRECTIONS {
            count += i32::from(self.color_at(node.neighbor(d)) == Some(color));
        }
        count
    }

    /// Like [`Configuration::colored_neighbors`] but not counting the
    /// particle at `exclude` (`|N_i(ℓ′) ∖ {P}|` in the paper's notation).
    #[inline]
    #[must_use]
    pub fn colored_neighbors_excluding(&self, node: Node, color: Color, exclude: Node) -> i32 {
        let mut count = 0;
        for d in DIRECTIONS {
            let m = node.neighbor(d);
            if m != exclude && self.color_at(m) == Some(color) {
                count += 1;
            }
        }
        count
    }

    /// Gathers, in one pass, everything a chain proposal `(from, dir)`'s
    /// filters need to know about its combined neighborhood:
    /// `(occupied, color)` for each of the eight ring nodes around the pair
    /// `(from, from + dir)` — the target itself is *not* probed, so callers
    /// can branch on it first and skip the gather entirely for the 1-probe
    /// hold outcomes.
    ///
    /// This is the fused alternative to probing
    /// [`Configuration::occupied_neighbors`],
    /// [`Configuration::colored_neighbors`], their `_excluding` variants and
    /// [`crate::properties::ring_occupancy`] independently — eight occupancy
    /// probes total instead of ~39, and no heap allocation.
    #[inline]
    #[must_use]
    pub fn ring_gather(&self, from: Node, dir: Direction) -> RingGather {
        match &self.grid {
            // Raster path: eight direct byte probes by default, or the
            // `ring-windows` row-window gather (see [`crate::grid`]'s
            // `ring_codes`). `decode(0)` is `C1`, exactly the placeholder
            // the map path leaves in unoccupied lanes, so both paths
            // return identical values bit for bit.
            Some(g) => RingGather::from_codes(g.ring_codes(from, dir)),
            None => {
                let mut occupancy = 0u8;
                let mut colors = [Color::C1; 8];
                for (k, &off) in ring_offsets(dir).iter().enumerate() {
                    if let Some(s) = self.occupancy.get(from + off) {
                        occupancy |= 1 << k;
                        colors[k] = s.color;
                    }
                }
                RingGather { occupancy, colors }
            }
        }
    }

    /// Applies a transition's local `delta` to a tracked counter with
    /// checked arithmetic. On a consistent configuration no legal local
    /// change can take a counter out of `u64` range, so an overflow or
    /// underflow here proves the tracked value was already corrupt — it is
    /// surfaced as a typed error instead of wrapping into a plausible value
    /// the auditor could only catch much later.
    fn checked_counter(
        counter: &'static str,
        tracked: u64,
        delta: i64,
    ) -> Result<u64, ChainStateError> {
        let updated = if delta >= 0 {
            tracked.checked_add(delta as u64)
        } else {
            tracked.checked_sub(delta.unsigned_abs())
        };
        updated.ok_or(ChainStateError::CounterCorruption {
            counter,
            tracked,
            delta,
        })
    }

    /// Moves particle `index` to the adjacent unoccupied node `to`,
    /// maintaining the edge and heterogeneous-edge counts.
    ///
    /// # Panics
    ///
    /// Panics if `to` is occupied, equals the particle's current node, is
    /// not adjacent to it, or the tracked counters are corrupt — see
    /// [`Configuration::try_move_particle`] for the non-panicking form.
    pub fn move_particle(&mut self, index: usize, to: Node) {
        self.try_move_particle(index, to)
            .unwrap_or_else(|e| panic!("move_particle({index}, {to}): {e}"));
    }

    /// Moves particle `index` to the adjacent unoccupied node `to`,
    /// maintaining the edge and heterogeneous-edge counts, with corrupt
    /// tracked counters surfaced as typed errors (matching the
    /// `move_ratio`/`swap_ratio` convention). On error the configuration is
    /// left untouched.
    ///
    /// # Errors
    ///
    /// * [`ChainStateError::UnoccupiedSource`] — the particle table points
    ///   at a node the occupancy map does not contain (corrupt state);
    /// * [`ChainStateError::CounterCorruption`] — applying the move's local
    ///   edge/hetero delta would wrap a tracked counter.
    ///
    /// # Panics
    ///
    /// Panics if `to` is occupied, equals the particle's current node, or
    /// is not adjacent to it — those are caller API misuse, not state
    /// corruption.
    pub fn try_move_particle(&mut self, index: usize, to: Node) -> Result<(), ChainStateError> {
        let from = self.positions[index];
        assert!(
            from.is_adjacent(to),
            "move target {to} is not adjacent to {from}"
        );
        assert!(!self.occupancy.contains(to), "move target {to} is occupied");
        let slot = self
            .occupancy
            .remove(from)
            .ok_or(ChainStateError::UnoccupiedSource(from))?;
        debug_assert_eq!(slot.index as usize, index);
        let color = slot.color;
        // The raster must mirror the map while the particle is lifted: the
        // neighbor counts below read through it.
        if let Some(g) = &mut self.grid {
            g.clear(from);
        }

        // With the particle lifted off the board, plain neighbor counts at
        // `from` and `to` are exactly the edges removed and added.
        let old_deg = i64::from(self.occupied_neighbors(from));
        let old_het =
            i64::from(self.occupied_neighbors(from) - self.colored_neighbors(from, color));
        let new_deg = i64::from(self.occupied_neighbors(to));
        let new_het = i64::from(self.occupied_neighbors(to) - self.colored_neighbors(to, color));

        let outcome =
            Self::checked_counter("edges", self.edges, new_deg - old_deg).and_then(|edges| {
                Self::checked_counter("hetero", self.hetero, new_het - old_het)
                    .map(|hetero| (edges, hetero))
            });
        match outcome {
            Ok((edges, hetero)) => {
                self.edges = edges;
                self.hetero = hetero;
                self.occupancy.insert(to, slot);
                self.positions[index] = to;
                self.grid_occupy(to, grid::encode(color));
                Ok(())
            }
            Err(e) => {
                // Put the lifted particle back so the failed transition
                // leaves the (already corrupt, but unchanged) state intact
                // for the auditor.
                self.occupancy.insert(from, slot);
                self.grid_occupy(from, grid::encode(color));
                Err(e)
            }
        }
    }

    /// Swaps the particles at adjacent nodes `a` and `b` (a *swap move*).
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` are not adjacent, either is unoccupied, or the
    /// tracked hetero counter is corrupt — see [`Configuration::try_swap`]
    /// for the non-panicking form.
    pub fn swap(&mut self, a: Node, b: Node) {
        self.try_swap(a, b)
            .unwrap_or_else(|e| panic!("swap({a}, {b}): {e}"));
    }

    /// Swaps the particles at adjacent nodes `a` and `b` (a *swap move*),
    /// with corrupt tracked counters surfaced as typed errors. On error the
    /// configuration is left untouched.
    ///
    /// A same-color swap is a no-op on the configuration but is still
    /// performed (positions exchange); the edge counts are unaffected either
    /// way, and `h(σ)` is updated from the local neighborhoods.
    ///
    /// # Errors
    ///
    /// * [`ChainStateError::UnoccupiedSource`] — `a` holds no particle;
    /// * [`ChainStateError::UnoccupiedTarget`] — `b` holds no particle;
    /// * [`ChainStateError::CounterCorruption`] — applying the swap's local
    ///   hetero delta would wrap the tracked counter (previously this
    ///   silently wrapped through an `as u64` cast).
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` are not adjacent (caller API misuse).
    pub fn try_swap(&mut self, a: Node, b: Node) -> Result<(), ChainStateError> {
        assert!(a.is_adjacent(b), "swap nodes {a} and {b} are not adjacent");
        let sa = *self
            .occupancy
            .get(a)
            .ok_or(ChainStateError::UnoccupiedSource(a))?;
        let sb = *self
            .occupancy
            .get(b)
            .ok_or(ChainStateError::UnoccupiedTarget(b))?;
        if sa.color != sb.color {
            // Recount heterogeneous edges in the two neighborhoods. The edge
            // (a, b) itself stays heterogeneous; edges to third parties flip
            // when the third party's color separates the two swapped colors.
            let mut delta: i64 = 0;
            for d in DIRECTIONS {
                let u = a.neighbor(d);
                if u != b {
                    if let Some(su) = self.occupancy.get(u) {
                        delta -= i64::from(su.color != sa.color);
                        delta += i64::from(su.color != sb.color);
                    }
                }
                let v = b.neighbor(d);
                if v != a {
                    if let Some(sv) = self.occupancy.get(v) {
                        delta -= i64::from(sv.color != sb.color);
                        delta += i64::from(sv.color != sa.color);
                    }
                }
            }
            self.hetero = Self::checked_counter("hetero", self.hetero, delta)?;
        }
        // Physically exchange the particles.
        self.occupancy.insert(a, sb);
        self.occupancy.insert(b, sa);
        self.positions[sa.index as usize] = b;
        self.positions[sb.index as usize] = a;
        // Both nodes were occupied, hence in-raster; only the codes change.
        self.grid_occupy(a, grid::encode(sb.color));
        self.grid_occupy(b, grid::encode(sa.color));
        Ok(())
    }

    /// Applies a move the sharded engine already committed to the raster:
    /// updates the occupancy map, the position table, and the tracked
    /// counters from the shard's precomputed deltas, deliberately *not*
    /// touching the raster (the shard worker mutated its row band in
    /// place, and recomputing the deltas against the post-round raster
    /// would be wrong anyway — they were evaluated mid-round).
    ///
    /// # Panics
    ///
    /// Panics if `from` holds no particle or a delta would wrap a tracked
    /// counter. Both prove pre-existing state corruption, and by this
    /// point the raster half of the transition is already applied, so
    /// unlike [`Configuration::try_move_particle`] there is no untouched
    /// state to hand back — a loud stop is the only honest option.
    pub(crate) fn apply_sharded_move(&mut self, from: Node, to: Node, d_edges: i64, d_hetero: i64) {
        let slot = self
            .occupancy
            .remove(from)
            .unwrap_or_else(|| panic!("sharded move: {}", ChainStateError::UnoccupiedSource(from)));
        self.edges = Self::checked_counter("edges", self.edges, d_edges)
            .unwrap_or_else(|e| panic!("sharded move: {e}"));
        self.hetero = Self::checked_counter("hetero", self.hetero, d_hetero)
            .unwrap_or_else(|e| panic!("sharded move: {e}"));
        self.occupancy.insert(to, slot);
        self.positions[slot.index as usize] = to;
    }

    /// Applies a swap the sharded engine already committed to the raster:
    /// exchanges the two occupancy entries and applies the shard's
    /// precomputed hetero delta. See [`Configuration::apply_sharded_move`]
    /// for why corruption panics here.
    pub(crate) fn apply_sharded_swap(&mut self, a: Node, b: Node, d_hetero: i64) {
        let sa = *self
            .occupancy
            .get(a)
            .unwrap_or_else(|| panic!("sharded swap: {}", ChainStateError::UnoccupiedSource(a)));
        let sb = *self
            .occupancy
            .get(b)
            .unwrap_or_else(|| panic!("sharded swap: {}", ChainStateError::UnoccupiedTarget(b)));
        self.hetero = Self::checked_counter("hetero", self.hetero, d_hetero)
            .unwrap_or_else(|e| panic!("sharded swap: {e}"));
        self.occupancy.insert(a, sb);
        self.occupancy.insert(b, sa);
        self.positions[sa.index as usize] = b;
        self.positions[sb.index as usize] = a;
    }

    /// The raster cache, if the system is currently rasterized.
    #[inline]
    pub(crate) fn raster(&self) -> Option<&ColorGrid> {
        self.grid.as_ref()
    }

    /// Mutable access to the raster cache for the sharded engine, which
    /// hands disjoint row bands of it to worker threads.
    #[inline]
    pub(crate) fn raster_mut(&mut self) -> Option<&mut ColorGrid> {
        self.grid.as_mut()
    }

    /// Marks `node` occupied with `code` in the raster cache, rebuilding the
    /// raster when the node falls outside it (a particle crossed the margin)
    /// and dropping the cache entirely if the grown system no longer
    /// rasterizes.
    fn grid_occupy(&mut self, node: Node, code: u8) {
        if let Some(g) = &mut self.grid {
            if !g.set(node, code) {
                let particles: Vec<(Node, Color)> =
                    self.occupancy.iter().map(|(n, s)| (n, s.color)).collect();
                self.grid = g.rebuild_grown(&particles);
                self.raster_rebuilds += 1;
            }
        }
    }

    /// Number of raster rebuilds forced by margin crossings over this
    /// configuration's lifetime. The rebuild policy doubles the margin each
    /// time (with hysteresis — see [`crate::grid`]), so under steady drift
    /// this grows logarithmically with distance, not linearly.
    #[inline]
    #[must_use]
    pub fn raster_rebuild_count(&self) -> u64 {
        self.raster_rebuilds
    }

    /// Recomputes `(e(σ), h(σ))` from scratch. Used by tests to validate the
    /// incremental bookkeeping; O(n).
    #[must_use]
    pub fn recount(&self) -> (u64, u64) {
        let mut edges = 0;
        let mut hetero = 0;
        // Count each edge from its E / NE / NW side only.
        const HALF: [Direction; 3] = [Direction::E, Direction::NE, Direction::NW];
        for (node, slot) in self.occupancy.iter() {
            for d in HALF {
                if let Some(other) = self.occupancy.get(node.neighbor(d)) {
                    edges += 1;
                    if other.color != slot.color {
                        hetero += 1;
                    }
                }
            }
        }
        (edges, hetero)
    }

    /// Rebuilds the incrementally-maintained counter caches (`e(σ)`,
    /// `h(σ)`) from the occupancy map alone, returning the previous
    /// `(edges, hetero)` values they replaced.
    ///
    /// The counters are pure summaries of occupancy, so this is always
    /// sound: after a rebuild the counter-class audit checks
    /// ([`AuditViolation::EdgeCountDrift`],
    /// [`AuditViolation::HeteroCountDrift`],
    /// [`AuditViolation::PerimeterUnderflow`]) are guaranteed clean, and
    /// on an already-consistent configuration the call is a no-op
    /// (round-trips bit for bit). O(n); intended for the recovery ladder,
    /// not the proposal hot path.
    pub fn rebuild_counters(&mut self) -> (u64, u64) {
        let old = (self.edges, self.hetero);
        let (edges, hetero) = self.recount();
        self.edges = edges;
        self.hetero = hetero;
        old
    }

    /// Attempts to reconcile an [`AuditReport`]'s violations in place.
    ///
    /// Counter-class violations are fixed by [`Configuration::rebuild_counters`];
    /// structural violations (occupancy desync, disconnection,
    /// perimeter/boundary-walk mismatch) are returned in
    /// [`RepairOutcome::unrepaired`] — the primary representation itself
    /// is damaged and the only sound recovery is restoring an earlier
    /// trusted state.
    pub fn repair(&mut self, report: &AuditReport) -> RepairOutcome {
        let mut repaired = Vec::new();
        let mut unrepaired = Vec::new();
        let mut rebuild = false;
        for v in &report.violations {
            match v {
                AuditViolation::EdgeCountDrift { .. }
                | AuditViolation::HeteroCountDrift { .. }
                | AuditViolation::PerimeterUnderflow { .. } => rebuild = true,
                other => unrepaired.push(other.clone()),
            }
        }
        if rebuild {
            let (old_edges, old_hetero) = self.rebuild_counters();
            repaired.push(format!(
                "rebuilt counter caches from occupancy: edges {old_edges} → {}, \
                 hetero {old_hetero} → {}",
                self.edges, self.hetero
            ));
        }
        RepairOutcome {
            repaired,
            unrepaired,
        }
    }

    /// Overwrites the tracked counter caches with arbitrary values.
    ///
    /// A fault-injection hook for cross-crate recovery tests (it is the
    /// only way to manufacture counter corruption without unsafe code);
    /// hidden from docs because no real caller should ever use it.
    #[doc(hidden)]
    pub fn inject_counter_fault(&mut self, edges: u64, hetero: u64) {
        self.edges = edges;
        self.hetero = hetero;
    }

    /// Whether the configuration is connected in `G_Δ`.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let mut seen = NodeSet::with_capacity(self.len());
        let mut stack = vec![self.positions[0]];
        seen.insert(self.positions[0]);
        while let Some(n) = stack.pop() {
            for m in n.neighbors() {
                if self.occupancy.contains(m) && seen.insert(m) {
                    stack.push(m);
                }
            }
        }
        seen.len() == self.len()
    }

    /// Number of holes: maximal finite connected components of unoccupied
    /// nodes.
    ///
    /// Computed by flood-filling the complement from outside the bounding
    /// box; unoccupied in-box nodes not reached belong to holes.
    #[must_use]
    pub fn hole_count(&self) -> usize {
        let (min_x, max_x, min_y, max_y) = self.bounding_box();
        // Expand by one so the outside margin forms a connected ring.
        let (lo_x, hi_x) = (min_x - 1, max_x + 1);
        let (lo_y, hi_y) = (min_y - 1, max_y + 1);

        let in_box = |n: Node| n.x >= lo_x && n.x <= hi_x && n.y >= lo_y && n.y <= hi_y;

        // Flood the exterior starting from the whole margin ring.
        let mut outside = NodeSet::new();
        let mut stack = Vec::new();
        for x in lo_x..=hi_x {
            for y in [lo_y, hi_y] {
                let n = Node::new(x, y);
                if !self.occupancy.contains(n) && outside.insert(n) {
                    stack.push(n);
                }
            }
        }
        for y in lo_y..=hi_y {
            for x in [lo_x, hi_x] {
                let n = Node::new(x, y);
                if !self.occupancy.contains(n) && outside.insert(n) {
                    stack.push(n);
                }
            }
        }
        while let Some(n) = stack.pop() {
            for m in n.neighbors() {
                if in_box(m) && !self.occupancy.contains(m) && outside.insert(m) {
                    stack.push(m);
                }
            }
        }

        // Remaining unoccupied in-box nodes are hole nodes; count components.
        let mut hole_seen = NodeSet::new();
        let mut holes = 0;
        for x in lo_x..=hi_x {
            for y in lo_y..=hi_y {
                let n = Node::new(x, y);
                if self.occupancy.contains(n) || outside.contains(n) || hole_seen.contains(n) {
                    continue;
                }
                holes += 1;
                hole_seen.insert(n);
                let mut stack = vec![n];
                while let Some(u) = stack.pop() {
                    for m in u.neighbors() {
                        if in_box(m)
                            && !self.occupancy.contains(m)
                            && !outside.contains(m)
                            && hole_seen.insert(m)
                        {
                            stack.push(m);
                        }
                    }
                }
            }
        }
        holes
    }

    /// Whether the configuration has at least one hole.
    #[must_use]
    pub fn has_holes(&self) -> bool {
        self.hole_count() > 0
    }

    /// Axial bounding box `(min_x, max_x, min_y, max_y)` of the particles.
    #[must_use]
    pub fn bounding_box(&self) -> (i32, i32, i32, i32) {
        let mut min_x = i32::MAX;
        let mut max_x = i32::MIN;
        let mut min_y = i32::MAX;
        let mut max_y = i32::MIN;
        for &n in &self.positions {
            min_x = min_x.min(n.x);
            max_x = max_x.max(n.x);
            min_y = min_y.min(n.y);
            max_y = max_y.max(n.y);
        }
        (min_x, max_x, min_y, max_y)
    }

    /// Length of the outer boundary walk `P`: the closed walk on
    /// configuration edges enclosing all particles.
    ///
    /// This is an independent O(p) computation of the perimeter used to
    /// cross-validate the `p = 3n − e − 3` identity; for configurations with
    /// holes it returns only the *outer* boundary length (the identity then
    /// differs by the hole boundaries).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is disconnected (the walk is undefined).
    #[must_use]
    pub fn boundary_walk_length(&self) -> u64 {
        assert!(
            self.is_connected(),
            "boundary walk requires a connected configuration"
        );
        if self.len() == 1 {
            return 0;
        }
        // Start at the lexicographically smallest occupied node (min x, then
        // min y): its W / NW / SW neighbors are all unoccupied, so the
        // exterior lies to its west and a counterclockwise contour walk can
        // start with a virtual predecessor in direction W.
        let start = self
            .positions
            .iter()
            .copied()
            .min_by_key(|n| (n.x, n.y))
            .expect("configuration is nonempty");

        let next_from = |cur: Node, back: Direction| -> Direction {
            // Scan counterclockwise from just past the direction we came
            // from; the last candidate is `back` itself (retreat from a leaf).
            for k in 1..=6 {
                let d = back.rotated_by(k);
                if self.occupancy.contains(cur.neighbor(d)) {
                    return d;
                }
            }
            unreachable!("connected configuration with n ≥ 2 has an occupied neighbor")
        };

        let first_dir = next_from(start, Direction::W);
        let mut cur = start.neighbor(first_dir);
        let mut back = first_dir.opposite();
        let mut steps: u64 = 1;
        loop {
            let d = next_from(cur, back);
            if cur == start && d == first_dir {
                break;
            }
            cur = cur.neighbor(d);
            back = d.opposite();
            steps += 1;
        }
        steps
    }

    /// Recomputes every tracked invariant from scratch and diffs the results
    /// against the incrementally-maintained bookkeeping.
    ///
    /// The audit independently re-derives, without consulting the tracked
    /// counters:
    ///
    /// * the occupancy map ↔ position/color table correspondence;
    /// * the edge count `e(σ)` and heterogeneous edge count `h(σ)`;
    /// * connectivity (which the chain provably preserves);
    /// * the hole count;
    /// * for connected hole-free states, the perimeter identity
    ///   `p(σ) = 3n − e(σ) − 3` against the contour boundary walk.
    ///
    /// Any disagreement becomes an [`AuditViolation`] in the returned
    /// [`AuditReport`]; the report never panics regardless of how corrupt
    /// the state is. Holes alone are *not* a violation — configurations
    /// with holes are legal chain states (Lemma 6 only guarantees holes
    /// eventually close) — but disconnection is, since every transition
    /// preserves connectivity.
    ///
    /// Cost is O(n + area of bounding box); intended for checkpoint
    /// boundaries and debugging, not the chain's hot path.
    #[must_use]
    pub fn audit(&self) -> AuditReport {
        let mut violations = Vec::new();

        // Occupancy map ↔ particle table correspondence, both directions.
        let mut entries = 0usize;
        for (node, slot) in self.occupancy.iter() {
            entries += 1;
            let idx = slot.index as usize;
            if idx >= self.positions.len() {
                violations.push(AuditViolation::OccupancyDesync {
                    node,
                    detail: format!(
                        "slot index {idx} out of range for {} particles",
                        self.positions.len()
                    ),
                });
                continue;
            }
            if self.positions[idx] != node {
                violations.push(AuditViolation::OccupancyDesync {
                    node,
                    detail: format!(
                        "slot index {idx} maps back to {}, not this node",
                        self.positions[idx]
                    ),
                });
            }
            if self.colors[idx] != slot.color {
                violations.push(AuditViolation::OccupancyDesync {
                    node,
                    detail: format!(
                        "slot color {:?} disagrees with color table {:?}",
                        slot.color, self.colors[idx]
                    ),
                });
            }
        }
        if entries != self.positions.len() {
            for (i, &n) in self.positions.iter().enumerate() {
                if self.occupancy.get(n).is_none() {
                    violations.push(AuditViolation::OccupancyDesync {
                        node: n,
                        detail: format!("particle {i} is missing from the occupancy map"),
                    });
                }
            }
        }

        // Raster cache ↔ occupancy map correspondence: every map entry's
        // cell holds its encoded color, and no stale cell survives (the
        // cell count matches the map). The raster is what the hot-path
        // probes actually read, so a desync here is as corrupting as a
        // map/table desync.
        if let Some(g) = &self.grid {
            for (node, slot) in self.occupancy.iter() {
                let cell = g.code(node);
                if cell != grid::encode(slot.color) {
                    violations.push(AuditViolation::OccupancyDesync {
                        node,
                        detail: format!(
                            "raster cell {cell} disagrees with occupancy color {:?}",
                            slot.color
                        ),
                    });
                }
            }
            let cells = g.occupied_cells();
            if cells != entries {
                violations.push(AuditViolation::OccupancyDesync {
                    node: self.positions[0],
                    detail: format!(
                        "raster holds {cells} occupied cells for {entries} map entries"
                    ),
                });
            }
        }

        let (edges, hetero) = self.recount();
        if edges != self.edges {
            violations.push(AuditViolation::EdgeCountDrift {
                tracked: self.edges,
                recomputed: edges,
            });
        }
        // `perimeter()` clamps an underflowing identity to 0 in release
        // builds; surface the corruption the clamp would hide. Checked on
        // the *tracked* counter — the recomputed count can never violate
        // the e ≤ 3n − 3 bound.
        let underflows = self
            .edges
            .checked_add(3)
            .is_none_or(|held| held > 3 * self.positions.len() as u64);
        if underflows {
            violations.push(AuditViolation::PerimeterUnderflow {
                particles: self.positions.len(),
                tracked_edges: self.edges,
            });
        }
        if hetero != self.hetero {
            violations.push(AuditViolation::HeteroCountDrift {
                tracked: self.hetero,
                recomputed: hetero,
            });
        }

        let connected = self.is_connected();
        if !connected {
            violations.push(AuditViolation::Disconnected);
        }
        let holes = self.hole_count();
        if connected && holes == 0 && self.len() > 1 {
            // Derive the identity from the *recomputed* edge count so this
            // check stays meaningful even when the tracked count drifted
            // (drift is already reported separately).
            let identity = (3 * self.positions.len() as u64).saturating_sub(edges + 3);
            let walk = self.boundary_walk_length();
            if identity != walk {
                violations.push(AuditViolation::PerimeterMismatch { identity, walk });
            }
        }

        AuditReport {
            particles: self.len(),
            edges,
            hetero_edges: hetero,
            connected,
            holes,
            violations,
        }
    }

    /// The canonical form of this configuration: particle set translated so
    /// its lexicographically smallest node is the origin, sorted. Two
    /// configurations are the same *configuration* in the paper's sense
    /// (equivalence class of arrangements under translation) iff their
    /// canonical forms are equal.
    #[must_use]
    pub fn canonical_form(&self) -> CanonicalForm {
        let base = self
            .positions
            .iter()
            .copied()
            .min_by_key(|n| (n.x, n.y))
            .expect("configuration is nonempty");
        let mut cells: Vec<(i32, i32, u8)> = self
            .particles()
            .map(|(n, c)| (n.x - base.x, n.y - base.y, c.index()))
            .collect();
        cells.sort_unstable();
        CanonicalForm { cells }
    }
}

/// The result of [`Configuration::ring_gather`]: one proposal's combined
/// neighborhood, gathered in a single pass.
///
/// Ring positions follow the cyclic layout of [`sops_lattice::ring`]; the
/// side masks [`sops_lattice::RING_FROM_SIDE`] / [`sops_lattice::RING_TO_SIDE`]
/// select the positions adjacent to the source and target respectively, so
/// every neighbor count the Metropolis exponents need is a masked popcount
/// over this gather.
#[derive(Clone, Copy, Debug)]
pub struct RingGather {
    /// Bit `k` set iff ring position `k` is occupied — the index into
    /// [`crate::properties::MOVEMENT_ALLOWED`].
    pub occupancy: u8,
    colors: [Color; 8],
}

impl RingGather {
    /// Builds a gather from eight raster cell codes in ring order — the
    /// shared decode step of [`Configuration::ring_gather`]'s raster path
    /// and the sharded engine's stripe-local gathers, so all raster
    /// consumers stay bit-for-bit interchangeable.
    #[inline]
    pub(crate) fn from_codes(codes: [u8; 8]) -> Self {
        let mut occupancy = 0u8;
        let mut colors = [Color::C1; 8];
        for (k, &code) in codes.iter().enumerate() {
            occupancy |= u8::from(code != 0) << k;
            colors[k] = grid::decode(code);
        }
        RingGather { occupancy, colors }
    }

    /// Number of occupied ring positions selected by `mask`.
    #[inline]
    #[must_use]
    pub fn occupied_in(&self, mask: u8) -> i32 {
        (self.occupancy & mask).count_ones() as i32
    }

    /// Number of ring positions selected by `mask` holding a particle of
    /// `color`.
    #[inline]
    #[must_use]
    pub fn colored_in(&self, mask: u8, color: Color) -> i32 {
        let mut count = 0;
        let mut bits = self.occupancy & mask;
        while bits != 0 {
            let k = bits.trailing_zeros() as usize;
            count += i32::from(self.colors[k] == color);
            bits &= bits - 1;
        }
        count
    }

    /// The color at ring position `k`, if occupied.
    #[inline]
    #[must_use]
    pub fn color_at(&self, k: usize) -> Option<Color> {
        (self.occupancy & (1 << k) != 0).then(|| self.colors[k])
    }

    /// Bitmask of the occupied ring positions holding `color` — the packed
    /// form the batched kernel stores per lane so every colored-neighbor
    /// count becomes a masked popcount over a byte array
    /// (`colored_in(mask, c) ≡ (color_mask(c) & mask).count_ones()`).
    #[inline]
    #[must_use]
    pub fn color_mask(&self, color: Color) -> u8 {
        let mut out = 0u8;
        let mut bits = self.occupancy;
        while bits != 0 {
            let k = bits.trailing_zeros();
            out |= u8::from(self.colors[k as usize] == color) << k;
            bits &= bits - 1;
        }
        out
    }
}

#[cfg(test)]
impl Configuration {
    /// Test-only: overwrites the tracked edge counter to simulate state
    /// corruption (exercises the `InvalidStateHold` classification).
    pub(crate) fn corrupt_edges_for_test(&mut self, edges: u64) {
        self.edges = edges;
    }

    /// Test-only: overwrites the tracked heterogeneous-edge counter.
    pub(crate) fn corrupt_hetero_for_test(&mut self, hetero: u64) {
        self.hetero = hetero;
    }
}

impl fmt::Debug for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Configuration")
            .field("n", &self.len())
            .field("edges", &self.edges)
            .field("hetero", &self.hetero)
            .field("perimeter", &self.perimeter())
            .finish()
    }
}

/// A translation-canonical snapshot of a configuration, usable as a hash key
/// (for state-space enumeration and empirical distributions).
///
/// # Example
///
/// ```
/// use sops_core::{Color, Configuration};
/// use sops_lattice::Node;
///
/// let a = Configuration::new([(Node::new(0, 0), Color::C1), (Node::new(1, 0), Color::C2)])?;
/// let b = Configuration::new([(Node::new(5, -3), Color::C1), (Node::new(6, -3), Color::C2)])?;
/// assert_eq!(a.canonical_form(), b.canonical_form());
/// # Ok::<(), sops_core::ConfigError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalForm {
    cells: Vec<(i32, i32, u8)>,
}

impl CanonicalForm {
    /// The `(x, y, color-index)` cells in sorted order.
    #[must_use]
    pub fn cells(&self) -> &[(i32, i32, u8)] {
        &self.cells
    }

    /// Number of particles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the form is empty (never true for forms produced by
    /// [`Configuration::canonical_form`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reconstructs a configuration from this form.
    #[must_use]
    pub fn to_configuration(&self) -> Configuration {
        Configuration::new(
            self.cells
                .iter()
                .map(|&(x, y, c)| (Node::new(x, y), Color::new(c))),
        )
        .expect("canonical forms hold distinct nodes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Configuration {
        Configuration::new([
            (Node::new(0, 0), Color::C1),
            (Node::new(1, 0), Color::C1),
            (Node::new(0, 1), Color::C2),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            Configuration::new(std::iter::empty()),
            Err(ConfigError::Empty)
        ));
        let dup = Configuration::new([(Node::new(0, 0), Color::C1), (Node::new(0, 0), Color::C2)]);
        assert!(matches!(dup, Err(ConfigError::DuplicateNode(_))));
    }

    #[test]
    fn counts_on_triangle() {
        let c = tri();
        assert_eq!(c.edge_count(), 3);
        assert_eq!(c.hetero_edge_count(), 2);
        assert_eq!(c.homo_edge_count(), 1);
        assert_eq!(c.perimeter(), 3);
        assert_eq!(c.recount(), (3, 2));
        assert_eq!(c.color_counts(), vec![2, 1]);
    }

    #[test]
    fn neighbor_counting_with_exclusion() {
        let c = tri();
        let origin = Node::new(0, 0);
        assert_eq!(c.occupied_neighbors(origin), 2);
        assert_eq!(c.occupied_neighbors_excluding(origin, Node::new(1, 0)), 1);
        assert_eq!(c.colored_neighbors(origin, Color::C1), 1);
        assert_eq!(c.colored_neighbors(origin, Color::C2), 1);
        assert_eq!(
            c.colored_neighbors_excluding(origin, Color::C2, Node::new(0, 1)),
            0
        );
        // Unoccupied node adjacent to all three particles.
        let hub = Node::new(1, -1); // neighbors: (0,0)? dist((1,-1),(0,0)) = 1 ✓, (1,0) ✓, (0,1)? dist = 2 ✗
        assert_eq!(c.occupied_neighbors(hub), 2);
    }

    #[test]
    fn move_particle_updates_counts_incrementally() {
        let mut c = tri();
        // Move the c2 particle from (0,1) to (1,-1)? not adjacent; use (-1,1)→ no.
        // (0,1) neighbors: (1,1),(0,2),(-1,2)?? Use a legal adjacent target: (1,1)? wait
        // we move particle 2 at (0,1) to (1,1), adjacent to both others? (1,1)-(0,0): dist 2.
        c.move_particle(2, Node::new(1, 1));
        assert_eq!(c.position_of(2), Node::new(1, 1));
        let (e, h) = c.recount();
        assert_eq!((c.edge_count(), c.hetero_edge_count()), (e, h));
        // (1,1) is adjacent to (1,0) and (0,1)(now empty): one edge, heterogeneous.
        assert_eq!(c.edge_count(), 2);
        assert_eq!(c.hetero_edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn move_to_occupied_panics() {
        let mut c = tri();
        c.move_particle(0, Node::new(1, 0));
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn move_to_non_adjacent_panics() {
        let mut c = tri();
        c.move_particle(0, Node::new(3, 3));
    }

    #[test]
    fn try_move_surfaces_counter_corruption_and_leaves_state_untouched() {
        let mut c = tri();
        // Moving the c2 particle off the triangle removes one net edge; a
        // (deliberately) corrupted zero edge counter cannot absorb that.
        c.edges = 0;
        let before_positions: Vec<Node> = c.positions.clone();
        let err = c.try_move_particle(2, Node::new(1, 1)).unwrap_err();
        assert_eq!(
            err,
            ChainStateError::CounterCorruption {
                counter: "edges",
                tracked: 0,
                delta: -1,
            }
        );
        assert!(err.to_string().contains("edges counter corrupt"));
        // The failed transition restored the lifted particle: positions and
        // occupancy are exactly as before.
        assert_eq!(c.positions, before_positions);
        assert_eq!(c.color_at(Node::new(0, 1)), Some(Color::C2));
        assert!(!c.is_occupied(Node::new(1, 1)));
    }

    #[test]
    #[should_panic(expected = "counter corrupt")]
    fn move_panics_loudly_on_corrupt_counters() {
        // Regression: this previously wrapped `edges` to u64::MAX (release)
        // or panicked with a bare overflow message (debug) instead of
        // naming the corrupted counter.
        let mut c = tri();
        c.edges = 0;
        c.move_particle(2, Node::new(1, 1));
    }

    #[test]
    fn try_swap_surfaces_hetero_corruption_and_leaves_state_untouched() {
        // Line c1, c2, c1: swapping the last two particles drops one
        // heterogeneous edge, which a corrupted zero counter cannot absorb.
        let mut c = Configuration::new([
            (Node::new(0, 0), Color::C1),
            (Node::new(1, 0), Color::C2),
            (Node::new(2, 0), Color::C1),
        ])
        .unwrap();
        assert_eq!(c.hetero_edge_count(), 2);
        c.hetero = 0;
        let err = c.try_swap(Node::new(1, 0), Node::new(2, 0)).unwrap_err();
        assert_eq!(
            err,
            ChainStateError::CounterCorruption {
                counter: "hetero",
                tracked: 0,
                delta: -1,
            }
        );
        // The particles did not exchange.
        assert_eq!(c.color_at(Node::new(1, 0)), Some(Color::C2));
        assert_eq!(c.color_at(Node::new(2, 0)), Some(Color::C1));
    }

    #[test]
    fn try_swap_reports_unoccupied_endpoints() {
        let mut c = tri();
        let empty = Node::new(1, 1);
        assert_eq!(
            c.try_swap(empty, Node::new(1, 0)).unwrap_err(),
            ChainStateError::UnoccupiedSource(empty)
        );
        assert_eq!(
            c.try_swap(Node::new(1, 0), empty).unwrap_err(),
            ChainStateError::UnoccupiedTarget(empty)
        );
    }

    #[test]
    fn audit_flags_perimeter_underflow_from_corrupt_edge_counter() {
        let mut c = tri();
        // 3n − 3 = 6 is the true maximum; a tracked count beyond it makes
        // the perimeter identity underflow. `perimeter()` clamps to 0, so
        // the audit must report the corruption explicitly.
        c.edges = 100;
        let report = c.audit();
        assert!(!report.is_consistent());
        assert!(report.violations.iter().any(|v| matches!(
            v,
            AuditViolation::PerimeterUnderflow {
                particles: 3,
                tracked_edges: 100,
            }
        )));
        assert!(report
            .violation_messages()
            .iter()
            .any(|m| m.contains("underflow")));
        // The drift itself is still reported separately.
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, AuditViolation::EdgeCountDrift { .. })));
        // A consistent configuration reports neither.
        assert!(tri().audit().is_consistent());
    }

    #[test]
    fn swap_updates_hetero_count() {
        // Line: c1 at (0,0), c1 at (1,0), c2 at (2,0).
        let mut c = Configuration::new([
            (Node::new(0, 0), Color::C1),
            (Node::new(1, 0), Color::C1),
            (Node::new(2, 0), Color::C2),
        ])
        .unwrap();
        assert_eq!(c.hetero_edge_count(), 1);
        c.swap(Node::new(1, 0), Node::new(2, 0));
        // Now colors along the line are c1, c2, c1: two heterogeneous edges.
        assert_eq!(c.hetero_edge_count(), 2);
        assert_eq!(c.recount().1, 2);
        assert_eq!(c.color_at(Node::new(1, 0)), Some(Color::C2));
        // Particle identities moved: particle 1 (c1) now sits at (2,0).
        assert_eq!(c.position_of(1), Node::new(2, 0));
        assert_eq!(c.color_of(1), Color::C1);
        // Swapping back restores the count.
        c.swap(Node::new(1, 0), Node::new(2, 0));
        assert_eq!(c.hetero_edge_count(), 1);
    }

    #[test]
    fn connectivity_and_holes() {
        let c = tri();
        assert!(c.is_connected());
        assert_eq!(c.hole_count(), 0);

        let disconnected =
            Configuration::new([(Node::new(0, 0), Color::C1), (Node::new(5, 5), Color::C1)])
                .unwrap();
        assert!(!disconnected.is_connected());

        // A 6-ring around an empty center: exactly one hole.
        let ring = Configuration::new(Node::ORIGIN.neighbors().into_iter().map(|n| (n, Color::C1)))
            .unwrap();
        assert!(ring.is_connected());
        assert_eq!(ring.hole_count(), 1);
        assert!(ring.has_holes());
    }

    #[test]
    fn perimeter_identity_matches_boundary_walk() {
        let c = tri();
        assert_eq!(c.boundary_walk_length(), c.perimeter());

        // Hexagon of 7 particles: e = 12, p = 3·7 − 3 − 12 = 6.
        let mut nodes = vec![Node::ORIGIN];
        nodes.extend(Node::ORIGIN.neighbors());
        let hex = Configuration::new(nodes.into_iter().map(|n| (n, Color::C1))).unwrap();
        assert_eq!(hex.perimeter(), 6);
        assert_eq!(hex.boundary_walk_length(), 6);

        // A line of 4: e = 3, p = 12 − 3 − 3 = 6 (walk goes out and back).
        let line = Configuration::new((0..4).map(|x| (Node::new(x, 0), Color::C1))).unwrap();
        assert_eq!(line.perimeter(), 6);
        assert_eq!(line.boundary_walk_length(), 6);
    }

    #[test]
    fn single_particle_has_zero_perimeter() {
        let c = Configuration::new([(Node::ORIGIN, Color::C1)]).unwrap();
        assert_eq!(c.perimeter(), 0);
        assert_eq!(c.boundary_walk_length(), 0);
        assert_eq!(c.edge_count(), 0);
    }

    #[test]
    fn holey_configuration_walk_counts_outer_boundary_only() {
        // 6-ring: outer walk length 6·... ring of 6 particles: e = 6,
        // identity p = 18 − 3 − 6 = 9 = outer (6) + hole boundary (... 3)? No:
        // just verify outer walk < identity for a holey configuration.
        let ring = Configuration::new(Node::ORIGIN.neighbors().into_iter().map(|n| (n, Color::C1)))
            .unwrap();
        assert!(ring.has_holes());
        assert!(ring.boundary_walk_length() < ring.perimeter());
    }

    #[test]
    fn canonical_form_is_translation_invariant_and_color_sensitive() {
        let a = tri();
        let b = Configuration::new([
            (Node::new(10, -7), Color::C1),
            (Node::new(11, -7), Color::C1),
            (Node::new(10, -6), Color::C2),
        ])
        .unwrap();
        assert_eq!(a.canonical_form(), b.canonical_form());

        let recolored = Configuration::new([
            (Node::new(0, 0), Color::C2),
            (Node::new(1, 0), Color::C1),
            (Node::new(0, 1), Color::C2),
        ])
        .unwrap();
        assert_ne!(a.canonical_form(), recolored.canonical_form());

        // Round trip.
        let rt = a.canonical_form().to_configuration();
        assert_eq!(rt.canonical_form(), a.canonical_form());
        assert_eq!(rt.edge_count(), a.edge_count());
    }

    #[test]
    fn audit_of_clean_configuration_is_consistent() {
        let c = tri();
        let report = c.audit();
        assert!(report.is_consistent(), "{report}");
        assert_eq!(report.particles, 3);
        assert_eq!(report.edges, 3);
        assert_eq!(report.hetero_edges, 2);
        assert!(report.connected);
        assert_eq!(report.holes, 0);
        assert!(report.violation_messages().is_empty());
    }

    #[test]
    fn audit_detects_counter_drift() {
        let mut c = tri();
        c.edges += 1;
        c.hetero += 2;
        let report = c.audit();
        assert!(!report.is_consistent());
        assert!(report.violations.contains(&AuditViolation::EdgeCountDrift {
            tracked: 4,
            recomputed: 3,
        }));
        assert!(report
            .violations
            .contains(&AuditViolation::HeteroCountDrift {
                tracked: 4,
                recomputed: 2,
            }));
    }

    #[test]
    fn audit_detects_occupancy_desync() {
        let mut c = tri();
        // Corrupt the position table behind the occupancy map's back.
        c.positions.swap(0, 1);
        let report = c.audit();
        assert!(!report.is_consistent());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, AuditViolation::OccupancyDesync { .. })));
    }

    #[test]
    fn audit_flags_disconnection_but_tolerates_holes() {
        // A ring has a hole but is a perfectly legal chain state.
        let ring = Configuration::new(Node::ORIGIN.neighbors().into_iter().map(|n| (n, Color::C1)))
            .unwrap();
        let report = ring.audit();
        assert_eq!(report.holes, 1);
        assert!(report.is_consistent(), "{report}");

        let split =
            Configuration::new([(Node::new(0, 0), Color::C1), (Node::new(9, 9), Color::C1)])
                .unwrap();
        let report = split.audit();
        assert!(report.violations.contains(&AuditViolation::Disconnected));
        // The audit must not panic on a disconnected state even though
        // `boundary_walk_length` would.
        assert!(!report.connected);
    }

    #[test]
    fn drifting_configuration_rebuilds_logarithmically_not_linearly() {
        // A two-particle pair marching 600 columns east, one column per two
        // moves. Under the old fixed-32 margin this forced a rebuild every
        // 32 columns (~18 total); the doubling policy pays 32, 64, 128,
        // 256, 512 → at most 5.
        let mut c =
            Configuration::new([(Node::new(0, 0), Color::C1), (Node::new(0, 1), Color::C2)])
                .unwrap();
        for x in 0..600 {
            c.move_particle(0, Node::new(x + 1, 0));
            c.move_particle(1, Node::new(x + 1, 1));
        }
        assert!(
            c.raster_rebuild_count() <= 6,
            "rebuild thrash: {} rebuilds over 600 columns of drift",
            c.raster_rebuild_count()
        );
        assert!(
            c.raster_rebuild_count() >= 1,
            "drift this far must rebuild at least once"
        );
        // The raster survived the march and still mirrors the map.
        assert!(c.audit().is_consistent());
        // Oscillating across the rebuild edge afterwards is absorbed by
        // the hysteresis (old extent stays covered): zero further rebuilds.
        let settled = c.raster_rebuild_count();
        for _ in 0..40 {
            c.move_particle(0, Node::new(601, 0));
            c.move_particle(0, Node::new(600, 0));
        }
        assert_eq!(c.raster_rebuild_count(), settled);
    }

    #[test]
    fn bounding_box() {
        let c = Configuration::new([
            (Node::new(-2, 3), Color::C1),
            (Node::new(-1, 3), Color::C1),
            (Node::new(-1, 4), Color::C1),
        ])
        .unwrap();
        assert_eq!(c.bounding_box(), (-2, -1, 3, 4));
    }
}
