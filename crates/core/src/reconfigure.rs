//! A constructive witness for Lemma 8 (irreducibility).
//!
//! The paper's ergodicity proof sketch argues any connected hole-free
//! configuration can be reconfigured into a straight line, the line can be
//! sorted by color, and reversibility closes the argument. This module makes
//! the first two steps *executable*: [`line_witness`] produces an explicit
//! sequence of chain-valid moves (checked against the same Properties 4/5
//! and `e ≠ 5` conditions the chain itself uses, each with positive
//! probability under `M`) that transforms a configuration into the
//! color-sorted straight line. Exhaustive tests run it over every
//! enumerated configuration of small systems.
//!
//! # Strategy
//!
//! Fix the *root* `R`, the lexicographically largest particle (max `x`,
//! then max `y`); every other particle has `x ≤ R.x`, so the row east of
//! `R` is free. Repeatedly pick a *safely removable* particle (one whose
//! removal keeps the remainder connected), and walk it — by BFS over
//! single-particle moves, each validated by the chain's own
//! [`crate::SeparationChain::move_valid`] logic — to the east end of the
//! growing line at `(R.x + k, R.y)`. When only the root remains, the
//! system is a straight line; adjacent swap moves then sort the colors
//! (every swap of differently colored neighbors has positive probability).

use core::fmt;

use sops_lattice::{Node, NodeMap, NodeSet, DIRECTIONS};

use crate::{properties, Color, Configuration};

/// One step of a reconfiguration plan; each has positive probability under
/// chain `M`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// A particle moves from `from` to the adjacent unoccupied `to`.
    Move {
        /// Source node.
        from: Node,
        /// Destination node (adjacent, unoccupied at execution time).
        to: Node,
    },
    /// The particles at `a` and `b` (different colors) swap.
    Swap {
        /// First node.
        a: Node,
        /// Second node.
        b: Node,
    },
}

/// Errors from witness construction.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReconfigureError {
    /// The input configuration must be connected.
    Disconnected,
    /// The input configuration must be hole-free (the chain eliminates
    /// holes before the ergodicity argument applies).
    HasHoles,
    /// No safely removable particle could be walked to the line end —
    /// would indicate a gap in the constructive argument (never observed;
    /// exhaustive tests cover all small configurations).
    Stuck {
        /// Number of particles already placed on the line.
        placed: usize,
    },
}

impl fmt::Display for ReconfigureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigureError::Disconnected => write!(f, "configuration is not connected"),
            ReconfigureError::HasHoles => write!(f, "configuration has holes"),
            ReconfigureError::Stuck { placed } => {
                write!(
                    f,
                    "no movable particle found after placing {placed} on the line"
                )
            }
        }
    }
}

impl std::error::Error for ReconfigureError {}

/// Whether a single hypothetical particle at `from` could move one step in
/// `dir`, with every *other* particle given by `rest` — the same condition
/// chain `M` checks, evaluated without materializing a `Configuration`.
fn hypothetical_move_valid(rest: &NodeSet, from: Node, dir: sops_lattice::Direction) -> bool {
    let to = from.neighbor(dir);
    if rest.contains(to) {
        return false;
    }
    let neighbors = DIRECTIONS
        .iter()
        .filter(|d| rest.contains(from.neighbor(**d)))
        .count();
    if neighbors == 5 {
        return false;
    }
    let ring = properties::ring(from, dir);
    let mut occ = [false; 8];
    for (o, node) in occ.iter_mut().zip(ring) {
        *o = rest.contains(node);
    }
    properties::property4(occ) || properties::property5(occ)
}

/// BFS a single particle from `start` to `target` over chain-valid moves,
/// with all other particles fixed at `rest`. Returns the node path
/// (including both endpoints), or `None` if unreachable.
fn walk_path(rest: &NodeSet, start: Node, target: Node) -> Option<Vec<Node>> {
    if start == target {
        return Some(vec![start]);
    }
    let mut prev: NodeMap<Node> = NodeMap::new();
    let mut queue = std::collections::VecDeque::from([start]);
    prev.insert(start, start);
    while let Some(u) = queue.pop_front() {
        for d in DIRECTIONS {
            if !hypothetical_move_valid(rest, u, d) {
                continue;
            }
            let v = u.neighbor(d);
            if prev.contains(v) {
                continue;
            }
            prev.insert(v, u);
            if v == target {
                // Reconstruct.
                let mut path = vec![v];
                let mut cur = v;
                while cur != start {
                    cur = *prev.get(cur).expect("BFS predecessor exists");
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(v);
        }
    }
    None
}

/// Whether removing `node` keeps the remaining occupied set connected.
fn safely_removable(occupied: &NodeSet, node: Node, n: usize) -> bool {
    if n <= 1 {
        return false;
    }
    let seed = node
        .neighbors()
        .into_iter()
        .find(|m| occupied.contains(*m))
        .expect("connected configuration: every particle has a neighbor");
    let mut seen = NodeSet::with_capacity(n);
    seen.insert(seed);
    let mut stack = vec![seed];
    let mut count = 1;
    while let Some(u) = stack.pop() {
        for m in u.neighbors() {
            if m != node && occupied.contains(m) && seen.insert(m) {
                count += 1;
                stack.push(m);
            }
        }
    }
    count == n - 1
}

/// Builds an explicit sequence of chain-valid steps transforming `config`
/// into the straight east-facing line sorted by color index (smallest color
/// id westmost), rooted at the lexicographically largest particle.
///
/// # Errors
///
/// * [`ReconfigureError::Disconnected`] / [`ReconfigureError::HasHoles`]
///   on invalid inputs;
/// * [`ReconfigureError::Stuck`] if the constructive search fails (not
///   observed on any enumerated or randomized test input).
pub fn line_witness(config: &Configuration) -> Result<Vec<Step>, ReconfigureError> {
    if !config.is_connected() {
        return Err(ReconfigureError::Disconnected);
    }
    if config.has_holes() {
        return Err(ReconfigureError::HasHoles);
    }
    let n = config.len();
    let root = config
        .particles()
        .map(|(node, _)| node)
        .max_by_key(|node| (node.x, node.y))
        .expect("configuration is nonempty");

    let mut occupied: NodeSet = config.particles().map(|(node, _)| node).collect();
    let mut steps = Vec::new();

    // Phase 1: move every non-root particle onto the line east of root.
    for k in 1..n {
        let target = Node::new(root.x + k as i32, root.y);
        // Candidates: occupied nodes that are neither the root nor already
        // line nodes, whose removal keeps the rest connected.
        let is_line_node = |node: Node| node.y == root.y && node.x > root.x;
        let mut candidates: Vec<Node> = occupied
            .iter()
            .filter(|&node| node != root && !is_line_node(node))
            .collect();
        // Deterministic order: prefer far-from-root particles (blob tips).
        candidates.sort_by_key(|node| std::cmp::Reverse((node.distance(root), node.x, node.y)));

        let mut placed = false;
        for cand in candidates {
            if !safely_removable(&occupied, cand, n) {
                continue;
            }
            let mut rest = occupied.clone();
            rest.remove(cand);
            if let Some(path) = walk_path(&rest, cand, target) {
                for pair in path.windows(2) {
                    steps.push(Step::Move {
                        from: pair[0],
                        to: pair[1],
                    });
                }
                occupied.remove(cand);
                occupied.insert(target);
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(ReconfigureError::Stuck { placed: k - 1 });
        }
    }

    // Phase 2: sort the line by color via adjacent swaps. Simulate the
    // colors along the line to generate a bubble-sort swap schedule.
    let mut sim = config.clone();
    for step in &steps {
        if let Step::Move { from, to } = step {
            let idx = sim.index_at(*from).expect("witness step source occupied");
            sim.move_particle(idx, *to);
        }
    }
    let line_nodes: Vec<Node> = (0..n as i32)
        .map(|i| Node::new(root.x + i, root.y))
        .collect();
    let mut colors: Vec<Color> = line_nodes
        .iter()
        .map(|&node| sim.color_at(node).expect("line node occupied"))
        .collect();
    // Bubble sort by color index, emitting swaps (equal colors never swap:
    // the chain's swap move requires distinct colors).
    for i in 0..n {
        for j in 0..n.saturating_sub(i + 1) {
            if colors[j].index() > colors[j + 1].index() {
                colors.swap(j, j + 1);
                steps.push(Step::Swap {
                    a: line_nodes[j],
                    b: line_nodes[j + 1],
                });
            }
        }
    }
    Ok(steps)
}

/// Applies a witness plan to a configuration, validating every step against
/// the chain's own movement conditions.
///
/// # Panics
///
/// Panics if any step is invalid for the configuration it is applied to —
/// which would falsify the witness.
pub fn apply(config: &mut Configuration, steps: &[Step]) {
    for (i, step) in steps.iter().enumerate() {
        match *step {
            Step::Move { from, to } => {
                let dir = from
                    .direction_to(to)
                    .unwrap_or_else(|| panic!("step {i}: nodes not adjacent"));
                let idx = config
                    .index_at(from)
                    .unwrap_or_else(|| panic!("step {i}: source {from} unoccupied"));
                // Re-verify with the real chain conditions.
                assert!(!config.is_occupied(to), "step {i}: target {to} occupied");
                assert_ne!(
                    config.occupied_neighbors(from),
                    5,
                    "step {i}: e = 5 forbids the move"
                );
                assert!(
                    properties::movement_allowed(config, from, dir),
                    "step {i}: Properties 4/5 fail for {from} → {to}"
                );
                config.move_particle(idx, to);
            }
            Step::Swap { a, b } => {
                let ca = config
                    .color_at(a)
                    .unwrap_or_else(|| panic!("step {i}: {a} empty"));
                let cb = config
                    .color_at(b)
                    .unwrap_or_else(|| panic!("step {i}: {b} empty"));
                assert_ne!(ca, cb, "step {i}: same-color swap has no effect");
                config.swap(a, b);
            }
        }
    }
}

/// The canonical form of the color-sorted line every witness ends at, for
/// the given color multiset.
#[must_use]
pub fn sorted_line_form(colors: &[Color]) -> crate::CanonicalForm {
    let mut sorted: Vec<Color> = colors.to_vec();
    sorted.sort_by_key(|c| c.index());
    Configuration::new(
        sorted
            .into_iter()
            .enumerate()
            .map(|(i, c)| (Node::new(i as i32, 0), c)),
    )
    .expect("line nodes are distinct")
    .canonical_form()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{construct, enumerate};
    use rand::SeedableRng;

    fn check_witness(config: &Configuration) {
        let steps = line_witness(config).expect("witness must exist");
        let mut work = config.clone();
        apply(&mut work, &steps);
        let colors: Vec<Color> = config.particles().map(|(_, c)| c).collect();
        assert_eq!(
            work.canonical_form(),
            sorted_line_form(&colors),
            "witness did not end at the sorted line"
        );
        assert!(work.is_connected());
    }

    #[test]
    fn witness_for_every_enumerated_shape_up_to_n6() {
        for n in 1..=6usize {
            for shape in enumerate::hole_free_shapes(n) {
                let config =
                    Configuration::new(shape.into_iter().map(|nd| (nd, Color::C1))).unwrap();
                check_witness(&config);
            }
        }
    }

    #[test]
    fn witness_sorts_colors_on_enumerated_bicolored_systems() {
        for shape in enumerate::hole_free_shapes(4) {
            for coloring in enumerate::bicolorings(&shape, 2) {
                let config = Configuration::new(coloring).unwrap();
                check_witness(&config);
            }
        }
    }

    #[test]
    fn witness_for_random_blobs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for trial in 0..15 {
            let n = 10 + trial;
            let nodes = loop {
                // random_blob may contain holes; retry until hole-free.
                let nodes = construct::random_blob(n, &mut rng);
                let mono = Configuration::new(nodes.iter().map(|&nd| (nd, Color::C1))).unwrap();
                if !mono.has_holes() {
                    break nodes;
                }
            };
            let config =
                Configuration::new(construct::bicolor_random(nodes, n / 2, &mut rng)).unwrap();
            check_witness(&config);
        }
    }

    #[test]
    fn witness_for_three_colors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let nodes = construct::hexagonal_spiral(12);
        let config =
            Configuration::new(construct::multicolor_random(nodes, &[4, 4, 4], &mut rng).unwrap())
                .unwrap();
        check_witness(&config);
    }

    #[test]
    fn witness_rejects_invalid_inputs() {
        let disconnected =
            Configuration::new([(Node::new(0, 0), Color::C1), (Node::new(5, 5), Color::C1)])
                .unwrap();
        assert_eq!(
            line_witness(&disconnected),
            Err(ReconfigureError::Disconnected)
        );

        let ring = Configuration::new(
            Node::ORIGIN
                .neighbors()
                .into_iter()
                .map(|nd| (nd, Color::C1)),
        )
        .unwrap();
        assert_eq!(line_witness(&ring), Err(ReconfigureError::HasHoles));
    }

    #[test]
    fn witness_of_a_line_still_ends_sorted() {
        // An already-straight (but unsorted) line: the witness re-roots the
        // line east of its lexicographically largest particle and sorts.
        let config = Configuration::new([
            (Node::new(0, 0), Color::C2),
            (Node::new(1, 0), Color::C1),
            (Node::new(2, 0), Color::C1),
        ])
        .unwrap();
        check_witness(&config);
        // A monochromatic line needs no swaps at all.
        let mono = Configuration::new((0..4).map(|x| (Node::new(x, 0), Color::C1))).unwrap();
        let steps = line_witness(&mono).unwrap();
        assert!(steps.iter().all(|s| matches!(s, Step::Move { .. })));
        check_witness(&mono);
    }

    #[test]
    fn single_particle_witness_is_empty() {
        let config = Configuration::new([(Node::new(3, -2), Color::C2)]).unwrap();
        assert_eq!(line_witness(&config).unwrap(), Vec::new());
    }
}
