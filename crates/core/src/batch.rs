//! Batched proposal engine: block-at-a-time evaluation of chain `M`.
//!
//! The sequential kernel ([`SeparationChain::propose`]) handles one proposal
//! at a time: draw, probe, filter, commit, repeat. This module evaluates
//! proposals in fixed-size **blocks** instead — all draws up front, ring
//! gathers batched into structure-of-arrays scratch, the Property-4/5 check
//! against the packed [`properties::MOVEMENT_ALLOWED_BITS`] bitset, and
//! every Metropolis exponent computed as a masked popcount over the block's
//! packed ring bytes (eight lanes per `u64` under the `simd` feature; see
//! [`masked_popcounts`]) — while producing **exactly** the trajectory the
//! sequential kernel would, proposal for proposal.
//!
//! # RNG draw-order contract (batched mode)
//!
//! Batched stepping consumes the RNG in a documented, block-structured
//! order. For each block of `B` proposals (the final block may be shorter):
//!
//! 1. **Pair draws, block-first.** The block's `B` (particle, direction)
//!    pairs are drawn first, in proposal order — for each proposal one
//!    particle index then one direction index, both via
//!    [`rand::PreparedUniform`] (Lemire widening-multiply rejection;
//!    division-free per draw). The spans (`n` and 6) are state-independent,
//!    so pair draws never depend on in-block acceptances.
//! 2. **Metropolis draws, commit-ordered and lazy.** The per-proposal
//!    uniform `q ~ U(0,1)` draws follow, in proposal order, consumed
//!    *exactly when the sequential kernel would consume them* for the same
//!    proposal applied to the same (current) state: no draw for the four
//!    hold/guard outcomes, no draw when the acceptance ratio is certainly
//!    ≥ 1, one `f64` draw otherwise.
//!
//! Under this contract the batched engine is *proposal-for-proposal
//! identical* to sequentially drawing each block's pairs up front and then
//! feeding them one at a time through [`SeparationChain::propose`] — same
//! [`StepOutcome`] sequence, same state evolution, same RNG stream. The
//! `kernel_equivalence` suite pins this bit for bit, including partial
//! blocks. (Note the *trajectory* differs from
//! [`SeparationChain::step_detailed`] stepping for the same seed, because
//! pair draws are grouped and use a different uniform reduction; both are
//! exact samplers of the same chain.)
//!
//! # How batching stays exact
//!
//! Verdicts are precomputed against block-start state, then committed in
//! proposal order with a conflict check: each accepted proposal dirties the
//! two nodes it changed, and a later proposal whose *footprint* (the
//! 10-node [`sops_lattice::pair_footprint_offsets`] neighborhood for lanes
//! that probed their ring; just `{ℓ, ℓ′}` for the 1-probe holds) touches a
//! dirty node is re-evaluated through the sequential kernel against the
//! live state. Everything a proposal's guards, exponents, and counter
//! updates can read lies inside its footprint, so clean lanes' precomputed
//! verdicts are exact and fallback lanes are sequential by construction.
//! Fallbacks are counted in [`BatchReport::fallback_proposals`]; on
//! steady-state configurations they are a small fraction (acceptance rates
//! are low), which is what makes the optimistic strategy profitable.

use rand::{PreparedUniform, Rng};

use sops_chains::metropolis::{accept as metropolis_accept, factor_certainly_ge_one};
use sops_lattice::{
    pair_footprint_offsets, Direction, Node, DIRECTIONS, RING_FROM_SIDE, RING_TO_SIDE,
};

use crate::{properties, Configuration, SeparationChain, StepOutcome};

/// Hard cap on the block size: the scratch buffers are fixed stack arrays.
pub const MAX_BLOCK_PROPOSALS: usize = 64;

/// Default block size for [`SeparationChain::run_batched`]: large enough to
/// amortize the block machinery and fill four `u64`-lane SWAR sweeps, small
/// enough that in-block conflicts (which force sequential fallback) stay
/// rare at realistic acceptance rates. Empirically the throughput curve is
/// flat from 16 to 48 lanes and dips slightly at 64 (the conflict-fallback
/// rate grows with the block while the SWAR sweeps are already saturated),
/// so the default sits at the flat region's center.
pub const DEFAULT_BLOCK_PROPOSALS: usize = 32;

/// Statistics from a batched run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Proposals evaluated (= the `steps` argument).
    pub steps: u64,
    /// Proposals that changed the state (moves + swaps).
    pub accepted: u64,
    /// Proposals whose footprint intersected an earlier in-block acceptance
    /// and were therefore re-evaluated through the sequential kernel.
    pub fallback_proposals: u64,
    /// Blocks executed (including the final partial block, if any).
    pub blocks: u64,
}

/// A lane's precomputed fate, one byte wide so the commit pass streams tags
/// instead of matching a 16-byte enum. The two *narrow* holds (whose
/// footprint is just `{ℓ, ℓ′}`) sort below [`TAG_NARROW_MAX`]; Metropolis
/// lanes carry their acceptance ratio in the block's `value` array, with
/// `value ≥ 1.0` meaning "certain accept, draw nothing".
const TAG_SAME_COLOR: u8 = 0;
const TAG_TARGET_OCCUPIED: u8 = 1;
/// Largest tag whose lane read only `{ℓ, ℓ′}` (see [`lane_conflicts`]).
const TAG_NARROW_MAX: u8 = TAG_TARGET_OCCUPIED;
const TAG_FIVE_NEIGHBORS: u8 = 2;
const TAG_PROPERTY: u8 = 3;
const TAG_MOVE: u8 = 4;
const TAG_SWAP: u8 = 5;

/// Structure-of-arrays scratch for one block, allocated once per run and
/// reused across blocks: re-zeroing ~3 KiB of lane arrays per 64 proposals
/// costs more than the popcounts they feed. Stale lanes from earlier
/// blocks are harmless — every consumer is gated on this block's verdicts.
struct BlockScratch {
    particle: [u32; MAX_BLOCK_PROPOSALS],
    dir: [Direction; MAX_BLOCK_PROPOSALS],
    from: [Node; MAX_BLOCK_PROPOSALS],
    occ: [u8; MAX_BLOCK_PROPOSALS],
    ci_bits: [u8; MAX_BLOCK_PROPOSALS],
    cj_bits: [u8; MAX_BLOCK_PROPOSALS],
    tag: [u8; MAX_BLOCK_PROPOSALS],
    value: [f64; MAX_BLOCK_PROPOSALS],
    /// Lane indices still awaiting their ratio after phase 2 (`TAG_MOVE` /
    /// `TAG_SWAP` lanes); phase 4 visits only these, not the whole block.
    pending: [u8; MAX_BLOCK_PROPOSALS],
    e_from: [u8; MAX_BLOCK_PROPOSALS],
    e_to: [u8; MAX_BLOCK_PROPOSALS],
    ci_from: [u8; MAX_BLOCK_PROPOSALS],
    ci_to: [u8; MAX_BLOCK_PROPOSALS],
    cj_from: [u8; MAX_BLOCK_PROPOSALS],
    cj_to: [u8; MAX_BLOCK_PROPOSALS],
}

impl BlockScratch {
    fn new() -> Box<Self> {
        Box::new(BlockScratch {
            particle: [0; MAX_BLOCK_PROPOSALS],
            dir: [DIRECTIONS[0]; MAX_BLOCK_PROPOSALS],
            from: [Node::ORIGIN; MAX_BLOCK_PROPOSALS],
            occ: [0; MAX_BLOCK_PROPOSALS],
            ci_bits: [0; MAX_BLOCK_PROPOSALS],
            cj_bits: [0; MAX_BLOCK_PROPOSALS],
            tag: [TAG_SAME_COLOR; MAX_BLOCK_PROPOSALS],
            value: [0.0; MAX_BLOCK_PROPOSALS],
            pending: [0; MAX_BLOCK_PROPOSALS],
            e_from: [0; MAX_BLOCK_PROPOSALS],
            e_to: [0; MAX_BLOCK_PROPOSALS],
            ci_from: [0; MAX_BLOCK_PROPOSALS],
            ci_to: [0; MAX_BLOCK_PROPOSALS],
            cj_from: [0; MAX_BLOCK_PROPOSALS],
            cj_to: [0; MAX_BLOCK_PROPOSALS],
        })
    }
}

impl SeparationChain {
    /// Runs `steps` proposals through the batched engine with the default
    /// block size, under the module-level RNG draw-order contract.
    ///
    /// Produces exactly the per-proposal behavior of the sequential fused
    /// kernel fed the same proposal stream; only the draw *schedule*
    /// (pairs grouped per block, Lemire-reduced) distinguishes it from
    /// [`SeparationChain::step_detailed`] stepping.
    ///
    /// # Panics
    ///
    /// Panics if `config` is empty (there is no particle to activate —
    /// matching [`SeparationChain::step_detailed`]).
    pub fn run_batched<R: Rng + ?Sized>(
        &self,
        config: &mut Configuration,
        steps: u64,
        rng: &mut R,
    ) -> BatchReport {
        self.run_batched_with(config, steps, DEFAULT_BLOCK_PROPOSALS, rng, |_| {})
    }

    /// [`SeparationChain::run_batched`] with an explicit block size and a
    /// per-proposal outcome sink (e.g.
    /// `sops_chains::telemetry::Instrumented::record_outcome`, or a test
    /// harness pinning equivalence).
    ///
    /// The sink observes every outcome in proposal order, after the
    /// proposal's state change (if any) has been applied. The block size is
    /// part of the sampling schedule: runs with different `block` values
    /// consume the RNG differently and yield different (equally exact)
    /// trajectories.
    ///
    /// # Panics
    ///
    /// Panics if `config` is empty or `block` is not in
    /// `1..=MAX_BLOCK_PROPOSALS`.
    pub fn run_batched_with<R: Rng + ?Sized>(
        &self,
        config: &mut Configuration,
        steps: u64,
        block: usize,
        rng: &mut R,
        mut sink: impl FnMut(StepOutcome),
    ) -> BatchReport {
        assert!(
            (1..=MAX_BLOCK_PROPOSALS).contains(&block),
            "block size {block} outside 1..={MAX_BLOCK_PROPOSALS}"
        );
        assert!(!config.is_empty(), "cannot step an empty configuration");
        let particle_sampler = PreparedUniform::new(config.len() as u64);
        let dir_sampler = PreparedUniform::new(DIRECTIONS.len() as u64);
        let mut report = BatchReport::default();
        let mut dirty: Vec<Node> = Vec::with_capacity(2 * block);
        let mut scratch = BlockScratch::new();
        let mut remaining = steps;
        while remaining > 0 {
            let b = remaining.min(block as u64) as usize;
            self.propose_block(
                config,
                b,
                &particle_sampler,
                &dir_sampler,
                rng,
                &mut scratch,
                &mut dirty,
                &mut report,
                &mut sink,
            );
            remaining -= b as u64;
        }
        report
    }

    /// Evaluates one block of `b ≤ MAX_BLOCK_PROPOSALS` proposals.
    #[allow(clippy::too_many_arguments)]
    fn propose_block<R: Rng + ?Sized>(
        &self,
        config: &mut Configuration,
        b: usize,
        particle_sampler: &PreparedUniform,
        dir_sampler: &PreparedUniform,
        rng: &mut R,
        scratch: &mut BlockScratch,
        dirty: &mut Vec<Node>,
        report: &mut BatchReport,
        sink: &mut impl FnMut(StepOutcome),
    ) {
        // Slice views sized to this block: one bound assertion each, so the
        // per-lane loops below index without repeated bounds checks.
        let particle = &mut scratch.particle[..b];
        let dir = &mut scratch.dir[..b];
        let from = &mut scratch.from[..b];
        let occ = &mut scratch.occ[..b];
        let ci_bits = &mut scratch.ci_bits[..b];
        let cj_bits = &mut scratch.cj_bits[..b];
        let tag = &mut scratch.tag[..b];
        let value = &mut scratch.value[..b];
        let mut npending = 0usize;
        let swaps = self.swaps_enabled();

        // Phases 1+2, fused — pair draws in proposal order (contract point
        // 1) with each lane's gather against block-start state. The fusion
        // is draw-order-neutral: this loop consumes only pair draws, whose
        // spans are state-independent, and commits don't start until phase
        // 5. Lanes are independent, so the probes of the whole block
        // pipeline without the serial probe→filter→commit dependency of
        // the sequential kernel. The 1-probe holds skip their ring gather,
        // and guard-rejected move lanes skip their color mask, exactly
        // like the sequential kernel.
        for i in 0..b {
            let p = particle_sampler.sample(rng) as usize;
            let d = DIRECTIONS[dir_sampler.sample_usize(rng)];
            particle[i] = p as u32;
            dir[i] = d;
            let f = config.position_of(p);
            from[i] = f;
            match config.color_at(f.neighbor(d)) {
                None => {
                    let ring = config.ring_gather(f, d);
                    occ[i] = ring.occupancy;
                    tag[i] = if ring.occupied_in(RING_FROM_SIDE) == 5 {
                        TAG_FIVE_NEIGHBORS
                    } else if !properties::movement_allowed_packed(ring.occupancy) {
                        TAG_PROPERTY
                    } else {
                        ci_bits[i] = ring.color_mask(config.color_of(p));
                        scratch.pending[npending] = i as u8;
                        npending += 1;
                        TAG_MOVE
                    };
                }
                Some(qcolor) => {
                    let ci = config.color_of(p);
                    if qcolor == ci {
                        tag[i] = TAG_SAME_COLOR;
                    } else if !swaps {
                        tag[i] = TAG_TARGET_OCCUPIED;
                    } else {
                        let ring = config.ring_gather(f, d);
                        occ[i] = ring.occupancy;
                        ci_bits[i] = ring.color_mask(ci);
                        cj_bits[i] = ring.color_mask(qcolor);
                        scratch.pending[npending] = i as u8;
                        npending += 1;
                        tag[i] = TAG_SWAP;
                    }
                }
            }
        }

        // Phase 3 — every Metropolis exponent for the whole block as
        // masked popcounts over the packed ring bytes (SWAR under `simd`).
        // Lanes already held in phase 2 carry stale bytes; their counts
        // are computed harmlessly and never read.
        masked_popcounts(occ, RING_FROM_SIDE, &mut scratch.e_from[..b]);
        masked_popcounts(occ, RING_TO_SIDE, &mut scratch.e_to[..b]);
        masked_popcounts(ci_bits, RING_FROM_SIDE, &mut scratch.ci_from[..b]);
        masked_popcounts(ci_bits, RING_TO_SIDE, &mut scratch.ci_to[..b]);
        masked_popcounts(cj_bits, RING_FROM_SIDE, &mut scratch.cj_from[..b]);
        masked_popcounts(cj_bits, RING_TO_SIDE, &mut scratch.cj_to[..b]);

        // Phase 4 — table-evaluated acceptance ratios, visiting only the
        // lanes phase 2 left pending. A stored ratio ≥ 1.0 (whether proven
        // by `factor_certainly_ge_one` or computed numerically) means the
        // commit pass draws nothing — exactly the sequential kernel's
        // draw-iff-ratio-below-one rule.
        let bias = self.bias();
        for &iu in &scratch.pending[..npending] {
            let i = usize::from(iu);
            if tag[i] == TAG_MOVE {
                let de = i32::from(scratch.e_to[i]) - i32::from(scratch.e_from[i]);
                let dei = i32::from(scratch.ci_to[i]) - i32::from(scratch.ci_from[i]);
                value[i] = if factor_certainly_ge_one(bias.lambda(), de)
                    && factor_certainly_ge_one(bias.gamma(), dei)
                {
                    1.0
                } else {
                    self.tables().move_value(de, dei)
                };
            } else {
                let gain = (i32::from(scratch.ci_to[i]) - i32::from(scratch.ci_from[i]))
                    + (i32::from(scratch.cj_from[i]) - i32::from(scratch.cj_to[i]));
                value[i] = if factor_certainly_ge_one(bias.gamma(), gain) {
                    1.0
                } else {
                    self.tables().swap_value(gain)
                };
            }
        }

        // Phase 5 — commit in proposal order (contract point 2): lazy q
        // draws, conflict-checked optimistic commits, sequential fallback.
        //
        // The pending list doubles as the block's lane classification, so
        // the loop walks *runs* of hold lanes between consecutive pending
        // lanes: inside a run the outcome is a table lookup on the tag —
        // no per-lane class dispatch, no RNG, no possible acceptance — and
        // the Metropolis machinery is touched only at the (minority)
        // pending lanes.
        dirty.clear();
        let mut i = 0usize;
        for c in 0..=npending {
            let stop = if c < npending {
                usize::from(scratch.pending[c])
            } else {
                b
            };
            while i < stop {
                // Hold run. Until something is accepted `dirty` is empty
                // and the gate is one predictable test.
                let outcome = if !dirty.is_empty() && lane_conflicts(dirty, from[i], dir[i], tag[i])
                {
                    let out = self.fallback(config, particle[i] as usize, dir[i], rng, dirty);
                    report.fallback_proposals += 1;
                    report.accepted += u64::from(out.accepted());
                    out
                } else {
                    HOLD_OUTCOMES[usize::from(tag[i])]
                };
                sink(outcome);
                i += 1;
            }
            if c == npending {
                break;
            }
            // Pending (Metropolis) lane.
            let outcome = if !dirty.is_empty() && lane_conflicts(dirty, from[i], dir[i], tag[i]) {
                let out = self.fallback(config, particle[i] as usize, dir[i], rng, dirty);
                report.fallback_proposals += 1;
                out
            } else if tag[i] == TAG_MOVE {
                if value[i] >= 1.0 || metropolis_accept(value[i], rng) {
                    let t = from[i].neighbor(dir[i]);
                    match config.try_move_particle(particle[i] as usize, t) {
                        Ok(()) => {
                            dirty.push(from[i]);
                            dirty.push(t);
                            StepOutcome::MoveAccepted
                        }
                        Err(_) => StepOutcome::InvalidStateHold,
                    }
                } else {
                    StepOutcome::MoveRejectedMetropolis
                }
            } else if value[i] >= 1.0 || metropolis_accept(value[i], rng) {
                let t = from[i].neighbor(dir[i]);
                match config.try_swap(from[i], t) {
                    Ok(()) => {
                        dirty.push(from[i]);
                        dirty.push(t);
                        StepOutcome::SwapAccepted
                    }
                    Err(_) => StepOutcome::InvalidStateHold,
                }
            } else {
                StepOutcome::SwapRejectedMetropolis
            };
            report.accepted += u64::from(outcome.accepted());
            sink(outcome);
            i += 1;
        }
        report.steps += b as u64;
        report.blocks += 1;
    }
}

/// Outcomes of the four hold tags, indexed by tag value.
const HOLD_OUTCOMES: [StepOutcome; 4] = [
    StepOutcome::SameColorHold,
    StepOutcome::TargetOccupiedHold,
    StepOutcome::MoveRejectedFiveNeighbors,
    StepOutcome::MoveRejectedProperty,
];

impl SeparationChain {
    /// Re-evaluates a conflicting lane through the sequential kernel
    /// against the live state, recording any acceptance in `dirty`.
    #[cold]
    fn fallback<R: Rng + ?Sized>(
        &self,
        config: &mut Configuration,
        p: usize,
        d: Direction,
        rng: &mut R,
        dirty: &mut Vec<Node>,
    ) -> StepOutcome {
        let before = config.position_of(p);
        let out = self.propose(config, p, d, rng);
        if matches!(out, StepOutcome::MoveAccepted | StepOutcome::SwapAccepted) {
            dirty.push(before);
            dirty.push(before.neighbor(d));
        }
        out
    }
}

/// Whether a lane's precomputed verdict may be stale: true iff an earlier
/// in-block acceptance dirtied a node the verdict (or its commit) reads.
///
/// The 1-probe holds read only `{ℓ, ℓ′}` (plus the immutable per-particle
/// color); every other lane probed its ring, so its footprint is the full
/// 10-node pair neighborhood. A stale activated-particle position is caught
/// through `ℓ` itself: whatever moved the particle dirtied its old node.
#[inline]
fn lane_conflicts(dirty: &[Node], from: Node, dir: Direction, tag: u8) -> bool {
    if tag <= TAG_NARROW_MAX {
        dirty.contains(&from) || dirty.contains(&from.neighbor(dir))
    } else {
        let fp = pair_footprint_offsets(dir);
        fp.iter().any(|&off| dirty.contains(&(from + off)))
    }
}

/// Per-lane popcount of `bytes[i] & mask`, dispatched to the SWAR path when
/// the `simd` feature is enabled and the portable scalar path otherwise.
///
/// Both implementations are always compiled and produce identical results
/// (cross-tested exhaustively); the feature only selects the hot-path
/// implementation, so disabling `simd` cannot change any trajectory.
///
/// # Panics
///
/// Panics if `bytes` and `out` differ in length.
#[inline]
pub fn masked_popcounts(bytes: &[u8], mask: u8, out: &mut [u8]) {
    if cfg!(feature = "simd") {
        masked_popcounts_swar(bytes, mask, out);
    } else {
        masked_popcounts_scalar(bytes, mask, out);
    }
}

/// Portable reference implementation of [`masked_popcounts`]: one
/// `count_ones` per lane.
pub fn masked_popcounts_scalar(bytes: &[u8], mask: u8, out: &mut [u8]) {
    assert_eq!(bytes.len(), out.len());
    for (byte, lane) in bytes.iter().zip(out.iter_mut()) {
        *lane = (byte & mask).count_ones() as u8;
    }
}

/// SWAR implementation of [`masked_popcounts`]: eight lanes per `u64`,
/// masked with a byte-broadcast of `mask` and popcounted bytewise with the
/// carry-free divide-and-conquer reduction (no per-byte value exceeds 8, so
/// no stage carries across byte lanes). The remainder tail (< 8 lanes)
/// falls through to the scalar path.
pub fn masked_popcounts_swar(bytes: &[u8], mask: u8, out: &mut [u8]) {
    assert_eq!(bytes.len(), out.len());
    let wide_mask = u64::from_ne_bytes([mask; 8]);
    let mut chunks = bytes.chunks_exact(8);
    let mut lanes = out.chunks_exact_mut(8);
    for (chunk, lane) in (&mut chunks).zip(&mut lanes) {
        let word = u64::from_ne_bytes(chunk.try_into().expect("chunk of 8")) & wide_mask;
        lane.copy_from_slice(&bytewise_popcount(word).to_ne_bytes());
    }
    masked_popcounts_scalar(chunks.remainder(), mask, lanes.into_remainder());
}

/// Bytewise popcount: returns a `u64` whose byte `k` holds the popcount of
/// input byte `k`.
#[inline]
fn bytewise_popcount(x: u64) -> u64 {
    const M1: u64 = 0x5555_5555_5555_5555;
    const M2: u64 = 0x3333_3333_3333_3333;
    const M4: u64 = 0x0f0f_0f0f_0f0f_0f0f;
    let x = x - ((x >> 1) & M1);
    let x = (x & M2) + ((x >> 2) & M2);
    (x + (x >> 4)) & M4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{construct, Bias};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn swar_and_scalar_popcounts_agree_on_all_bytes_and_kernel_masks() {
        // Exhaustive over all byte patterns × the masks the kernel uses
        // (plus the degenerate ones), at a length exercising both the
        // 8-lane path and the tail.
        for mask in [RING_FROM_SIDE, RING_TO_SIDE, 0x00, 0xFF, 0b1010_1010] {
            let bytes: Vec<u8> = (0..=255u8).chain(0..=10).collect(); // 267 = 33*8 + 3
            let mut scalar = vec![0u8; bytes.len()];
            let mut swar = vec![0u8; bytes.len()];
            masked_popcounts_scalar(&bytes, mask, &mut scalar);
            masked_popcounts_swar(&bytes, mask, &mut swar);
            assert_eq!(scalar, swar, "mask {mask:#010b}");
            for (b, c) in bytes.iter().zip(&scalar) {
                assert_eq!(u32::from(*c), (b & mask).count_ones());
            }
        }
    }

    #[test]
    fn bytewise_popcount_matches_per_byte_count_ones() {
        let mut x = 0x0123_4567_89ab_cdefu64;
        for _ in 0..1_000 {
            // xorshift for pattern coverage
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let counts = bytewise_popcount(x).to_ne_bytes();
            for (k, byte) in x.to_ne_bytes().iter().enumerate() {
                assert_eq!(
                    u32::from(counts[k]),
                    byte.count_ones(),
                    "byte {k} of {x:#x}"
                );
            }
        }
    }

    #[test]
    fn batched_run_preserves_invariants_and_counts() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut config = construct::hexagonal_bicolored(30, 15).unwrap();
        let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
        let h0 = config.hetero_edge_count();
        let report = chain.run_batched(&mut config, 100_000, &mut rng);
        assert_eq!(report.steps, 100_000);
        assert_eq!(
            report.blocks,
            100_000u64.div_ceil(DEFAULT_BLOCK_PROPOSALS as u64)
        );
        assert!(report.accepted > 0);
        assert!(config.is_connected());
        assert!(config.audit().is_consistent());
        assert_eq!(
            (config.edge_count(), config.hetero_edge_count()),
            config.recount()
        );
        // Strong bias separates: heterogeneous edges drop.
        assert!(config.hetero_edge_count() < h0);
    }

    #[test]
    fn batched_sink_sees_every_outcome_in_order() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut config = construct::hexagonal_bicolored(12, 6).unwrap();
        let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
        let mut outcomes = Vec::new();
        let report = chain.run_batched_with(&mut config, 1_000, 32, &mut rng, |o| outcomes.push(o));
        assert_eq!(outcomes.len(), 1_000);
        let accepted = outcomes.iter().filter(|o| o.accepted()).count() as u64;
        assert_eq!(accepted, report.accepted);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut config = construct::hexagonal_bicolored(4, 2).unwrap();
        let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
        chain.run_batched_with(&mut config, 10, 0, &mut rng, |_| {});
    }
}
