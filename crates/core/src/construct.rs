//! Initial configurations and color assignments.
//!
//! The experiments need three families of starting states: near-minimal
//! hexagons (Lemma 2's construction, also the reference for α-compression),
//! maximal-perimeter lines (the irreducibility proof's canonical state), and
//! random connected blobs ("arbitrary initial configuration", Figure 2).

use rand::seq::SliceRandom;
use rand::{Rng, RngExt as _};
use sops_lattice::{Direction, Node, NodeSet, DIRECTIONS};

use crate::{Color, ConfigError, Configuration};

/// The first `n` nodes of the hexagonal spiral: a full hexagon of the
/// largest radius that fits, plus the remaining particles added around the
/// outside one side at a time — exactly the construction in the proof of
/// Lemma 2, achieving perimeter ≤ 2√3·√n.
///
/// # Example
///
/// ```
/// let nodes = sops_core::construct::hexagonal_spiral(7);
/// assert_eq!(nodes.len(), 7); // center + first ring
/// ```
#[must_use]
pub fn hexagonal_spiral(n: usize) -> Vec<Node> {
    let mut nodes = Vec::with_capacity(n);
    if n == 0 {
        return nodes;
    }
    nodes.push(Node::ORIGIN);
    let mut radius: i32 = 1;
    while nodes.len() < n {
        // Walk ring `radius`: start at (radius, 0), take `radius` steps in
        // each of the six directions NW, W, SW, SE, E, NE — then rotate the
        // ring so it begins one node past the corner. Starting mid-side makes
        // every added particle adjacent to two already-placed particles,
        // which is what keeps each prefix perimeter-minimal (Lemma 2's
        // "complete one side before beginning the next").
        let mut cur = Node::new(radius, 0);
        const RING_WALK: [Direction; 6] = [
            Direction::NW,
            Direction::W,
            Direction::SW,
            Direction::SE,
            Direction::E,
            Direction::NE,
        ];
        let mut ring = Vec::with_capacity(6 * radius as usize);
        for dir in RING_WALK {
            for _ in 0..radius {
                ring.push(cur);
                cur = cur.neighbor(dir);
            }
        }
        ring.rotate_left(1);
        for node in ring {
            nodes.push(node);
            if nodes.len() == n {
                break;
            }
        }
        radius += 1;
    }
    nodes
}

/// The minimum possible perimeter `p_min(n)` of a connected hole-free
/// configuration of `n` particles: `⌈√(12n − 3)⌉ − 3` (Harborth's formula
/// for maximal edge counts on the triangular lattice, via `p = 3n − 3 − e`).
///
/// Lemma 2's bound `p_min(n) ≤ 2√3·√n` follows; the exactness of this
/// closed form is cross-checked against exhaustive enumeration in tests.
///
/// # Example
///
/// ```
/// assert_eq!(sops_core::construct::min_perimeter(1), 0);
/// assert_eq!(sops_core::construct::min_perimeter(7), 6); // the hexagon
/// ```
#[must_use]
pub fn min_perimeter(n: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    let target = 12 * n as u64 - 3;
    // ⌈√target⌉ without floating point.
    let mut r = (target as f64).sqrt() as u64;
    while r * r < target {
        r += 1;
    }
    while r > 0 && (r - 1) * (r - 1) >= target {
        r -= 1;
    }
    r.saturating_sub(3)
}

/// A straight line of `n` nodes heading east from the origin — the
/// maximal-perimeter configuration used as the canonical intermediate state
/// in the irreducibility proof (Lemma 8).
#[must_use]
pub fn line_nodes(n: usize) -> Vec<Node> {
    (0..n as i32).map(|x| Node::new(x, 0)).collect()
}

/// A random connected configuration of `n` nodes grown by repeatedly
/// attaching a particle at a uniformly random unoccupied neighbor of a
/// uniformly random occupied node. May contain holes (legal chain input).
pub fn random_blob<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<Node> {
    let mut nodes = vec![Node::ORIGIN];
    let mut set = NodeSet::new();
    set.insert(Node::ORIGIN);
    while nodes.len() < n {
        let anchor = nodes[rng.random_range(0..nodes.len())];
        let cand = anchor.neighbor(DIRECTIONS[rng.random_range(0..6usize)]);
        if set.insert(cand) {
            nodes.push(cand);
        }
    }
    nodes
}

/// Colors the nodes in order: the first `n1` get `c₁`, the rest `c₂`.
/// On spiral or line orders this produces a coarsely pre-separated start.
#[must_use]
pub fn bicolor_halves(nodes: Vec<Node>, n1: usize) -> Vec<(Node, Color)> {
    nodes
        .into_iter()
        .enumerate()
        .map(|(i, n)| (n, if i < n1 { Color::C1 } else { Color::C2 }))
        .collect()
}

/// Colors nodes by a half-plane cut: the `⌈n/2⌉` nodes with smallest
/// Cartesian x-coordinate get `c₁`, the rest `c₂`. On compact node sets this
/// produces a straight `Θ(√n)` interface — the canonical *separated*
/// configuration of Definition 3.
#[must_use]
pub fn bicolor_halfplane(nodes: Vec<Node>) -> Vec<(Node, Color)> {
    let mut order: Vec<usize> = (0..nodes.len()).collect();
    order.sort_by(|&a, &b| {
        let xa = nodes[a].to_cartesian().0;
        let xb = nodes[b].to_cartesian().0;
        xa.partial_cmp(&xb)
            .expect("cartesian coordinates are finite")
            .then(nodes[a].y.cmp(&nodes[b].y))
    });
    let n1 = nodes.len().div_ceil(2);
    let mut colors = vec![Color::C2; nodes.len()];
    for &i in order.iter().take(n1) {
        colors[i] = Color::C1;
    }
    nodes.into_iter().zip(colors).collect()
}

/// Colors the nodes alternately `c₁, c₂, c₁, …` — a maximally mixed start.
#[must_use]
pub fn bicolor_alternating(nodes: Vec<Node>) -> Vec<(Node, Color)> {
    nodes
        .into_iter()
        .enumerate()
        .map(|(i, n)| (n, if i % 2 == 0 { Color::C1 } else { Color::C2 }))
        .collect()
}

/// Assigns exactly `n1` particles color `c₁` and the rest `c₂`, uniformly at
/// random.
pub fn bicolor_random<R: Rng + ?Sized>(
    nodes: Vec<Node>,
    n1: usize,
    rng: &mut R,
) -> Vec<(Node, Color)> {
    let mut colors: Vec<Color> = (0..nodes.len())
        .map(|i| if i < n1 { Color::C1 } else { Color::C2 })
        .collect();
    colors.shuffle(rng);
    nodes.into_iter().zip(colors).collect()
}

/// Assigns colors with the given per-class counts (class `i` gets
/// `counts[i]` particles), uniformly at random — for the `k > 2` experiments
/// of §5.
///
/// # Errors
///
/// Returns [`ConfigError::BadColorCounts`] if the counts do not sum to the
/// number of nodes.
pub fn multicolor_random<R: Rng + ?Sized>(
    nodes: Vec<Node>,
    counts: &[usize],
    rng: &mut R,
) -> Result<Vec<(Node, Color)>, ConfigError> {
    let sum: usize = counts.iter().sum();
    if sum != nodes.len() {
        return Err(ConfigError::BadColorCounts {
            n: nodes.len(),
            sum,
        });
    }
    let mut colors = Vec::with_capacity(sum);
    for (i, &c) in counts.iter().enumerate() {
        colors.extend(std::iter::repeat_n(Color::new(i as u8), c));
    }
    colors.shuffle(rng);
    Ok(nodes.into_iter().zip(colors).collect())
}

/// A hexagonal configuration of `n` particles with the first `n1` (in spiral
/// order) colored `c₁` — the standard compact bicolored seed.
///
/// # Errors
///
/// Returns [`ConfigError::BadColorCounts`] if `n1 > n` and
/// [`ConfigError::Empty`] if `n = 0`.
pub fn hexagonal_bicolored(n: usize, n1: usize) -> Result<Configuration, ConfigError> {
    if n1 > n {
        return Err(ConfigError::BadColorCounts { n, sum: n1 });
    }
    Configuration::new(bicolor_halves(hexagonal_spiral(n), n1))
}

/// A monochromatic straight line of `n` particles — the standard
/// maximal-perimeter seed for compression experiments.
///
/// # Errors
///
/// Returns [`ConfigError::Empty`] if `n = 0`.
pub fn line_monochromatic(n: usize) -> Result<Configuration, ConfigError> {
    Configuration::new(line_nodes(n).into_iter().map(|nd| (nd, Color::C1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spiral_prefix_sizes_are_hexagons() {
        // Spiral of 3ℓ²+3ℓ+1 nodes is exactly the hexagon of radius ℓ.
        for l in 0..5u32 {
            let n = (3 * l * l + 3 * l + 1) as usize;
            let nodes = hexagonal_spiral(n);
            assert_eq!(nodes.len(), n);
            assert!(
                nodes.iter().all(|nd| nd.distance(Node::ORIGIN) <= l),
                "radius {l}"
            );
        }
    }

    #[test]
    fn spiral_nodes_are_distinct_and_connected() {
        for n in [1, 2, 5, 12, 40, 100] {
            let nodes = hexagonal_spiral(n);
            let set: NodeSet = nodes.iter().copied().collect();
            assert_eq!(set.len(), n, "duplicates at n = {n}");
            let config = Configuration::new(nodes.into_iter().map(|nd| (nd, Color::C1))).unwrap();
            assert!(config.is_connected(), "disconnected at n = {n}");
            assert!(!config.has_holes(), "holes at n = {n}");
        }
    }

    #[test]
    fn spiral_meets_lemma2_bound() {
        // p(σ_spiral) ≤ 2√3·√n for every n (Lemma 2).
        for n in 1..=300usize {
            let config =
                Configuration::new(hexagonal_spiral(n).into_iter().map(|nd| (nd, Color::C1)))
                    .unwrap();
            let bound = 2.0 * 3.0_f64.sqrt() * (n as f64).sqrt();
            assert!(
                config.perimeter() as f64 <= bound + 1e-9,
                "n = {n}: p = {} > {bound}",
                config.perimeter()
            );
        }
    }

    #[test]
    fn spiral_achieves_min_perimeter() {
        // The spiral construction is perimeter-optimal for every prefix size.
        for n in 1..=300usize {
            let config =
                Configuration::new(hexagonal_spiral(n).into_iter().map(|nd| (nd, Color::C1)))
                    .unwrap();
            assert_eq!(config.perimeter(), min_perimeter(n), "n = {n}");
        }
    }

    #[test]
    fn min_perimeter_small_values() {
        // Hand-checked values (see DESIGN.md): p_min for n = 1..8.
        let expect = [0u64, 2, 3, 4, 5, 6, 6, 7];
        for (i, &p) in expect.iter().enumerate() {
            assert_eq!(min_perimeter(i + 1), p, "n = {}", i + 1);
        }
    }

    #[test]
    fn line_has_maximal_perimeter() {
        let config = line_monochromatic(10).unwrap();
        // Line: e = n − 1 ⇒ p = 3n − 3 − (n − 1) = 2n − 2.
        assert_eq!(config.perimeter(), 18);
        assert!(config.is_connected());
    }

    #[test]
    fn random_blob_is_connected_with_exact_size() {
        let mut rng = StdRng::seed_from_u64(8);
        for n in [1, 2, 10, 60] {
            let nodes = random_blob(n, &mut rng);
            assert_eq!(nodes.len(), n);
            let config = Configuration::new(nodes.into_iter().map(|nd| (nd, Color::C1))).unwrap();
            assert!(config.is_connected());
        }
    }

    #[test]
    fn coloring_helpers_count_correctly() {
        let nodes = hexagonal_spiral(10);
        let halves = bicolor_halves(nodes.clone(), 4);
        assert_eq!(halves.iter().filter(|(_, c)| *c == Color::C1).count(), 4);

        let alt = bicolor_alternating(nodes.clone());
        assert_eq!(alt.iter().filter(|(_, c)| *c == Color::C1).count(), 5);

        let mut rng = StdRng::seed_from_u64(1);
        let rnd = bicolor_random(nodes.clone(), 7, &mut rng);
        assert_eq!(rnd.iter().filter(|(_, c)| *c == Color::C1).count(), 7);

        let multi = multicolor_random(nodes.clone(), &[3, 3, 4], &mut rng).unwrap();
        for (i, expect) in [3usize, 3, 4].into_iter().enumerate() {
            assert_eq!(
                multi
                    .iter()
                    .filter(|(_, c)| c.index() as usize == i)
                    .count(),
                expect
            );
        }
        assert!(multicolor_random(nodes, &[1, 1], &mut rng).is_err());
    }

    #[test]
    fn hexagonal_bicolored_validates() {
        assert!(hexagonal_bicolored(5, 9).is_err());
        assert!(hexagonal_bicolored(0, 0).is_err());
        let c = hexagonal_bicolored(20, 8).unwrap();
        assert_eq!(c.color_counts(), vec![8, 12]);
    }
}
