//! Exhaustive enumeration of particle-system configurations.
//!
//! Configurations are equivalence classes of arrangements under translation
//! (§2.2), so "all configurations of `n` particles" is a finite set we can
//! enumerate for small `n`. This machine-checks several of the paper's
//! claims exactly:
//!
//! * Lemma 1's configuration counting by perimeter
//!   ([`perimeter_counts`]);
//! * Lemma 8 (ergodicity) and Lemma 9 (the stationary distribution), by
//!   exposing chain `M` as an [`sops_chains::EnumerableChain`]
//!   ([`ExactSeparationChain`]) and checking irreducibility, aperiodicity,
//!   and detailed balance on the exact transition matrix;
//! * Lemma 6's "no new holes" invariant — a transition out of the hole-free
//!   state space would panic the matrix construction;
//! * the exactness of [`crate::construct::min_perimeter`].

use std::collections::HashSet;

use sops_chains::EnumerableChain;
use sops_lattice::{Node, NodeSet, DIRECTIONS};

use crate::{Bias, CanonicalForm, Color, Configuration, SeparationChain};

/// Canonicalizes a node set under translation: shift so the lexicographically
/// smallest node is the origin, then sort.
fn canonical_shape(mut nodes: Vec<Node>) -> Vec<Node> {
    let base = nodes
        .iter()
        .copied()
        .min_by_key(|n| (n.x, n.y))
        .expect("shape is nonempty");
    for n in &mut nodes {
        *n = *n - base;
    }
    nodes.sort_unstable_by_key(|n| (n.x, n.y));
    nodes
}

/// All connected configurations of `n` particles up to translation
/// (including those with holes), as canonical sorted node lists.
///
/// The counts match the fixed polyhex numbers (OEIS A001207): 1, 3, 11, 44,
/// 186, 814, 3652, 16689, … — enumeration beyond `n ≈ 10` gets large.
///
/// # Example
///
/// ```
/// assert_eq!(sops_core::enumerate::shapes(3).len(), 11);
/// ```
#[must_use]
pub fn shapes(n: usize) -> Vec<Vec<Node>> {
    assert!(n >= 1, "shape enumeration needs n ≥ 1");
    let mut level: HashSet<Vec<Node>> = HashSet::new();
    level.insert(vec![Node::ORIGIN]);
    for _ in 1..n {
        let mut next: HashSet<Vec<Node>> = HashSet::new();
        for shape in &level {
            let set: NodeSet = shape.iter().copied().collect();
            for node in shape {
                for d in DIRECTIONS {
                    let cand = node.neighbor(d);
                    if set.contains(cand) {
                        continue;
                    }
                    let mut grown = shape.clone();
                    grown.push(cand);
                    next.insert(canonical_shape(grown));
                }
            }
        }
        level = next;
    }
    let mut out: Vec<Vec<Node>> = level.into_iter().collect();
    out.sort_unstable();
    out
}

/// All connected configurations of `n` particles up to **all lattice
/// isometries** (translations, rotations, reflections) — "free" shapes.
///
/// The counts match the free polyhex numbers (OEIS A000228):
/// 1, 1, 3, 7, 22, 82, 333, 1448, … — a strong cross-check of both the
/// enumeration and the symmetry-group implementation.
#[must_use]
pub fn free_shapes(n: usize) -> Vec<Vec<Node>> {
    let mut seen: HashSet<Vec<Node>> = HashSet::new();
    let mut out = Vec::new();
    for shape in shapes(n) {
        let canon = sops_lattice::symmetry::canonical_isometry(&shape);
        if seen.insert(canon.clone()) {
            out.push(canon);
        }
    }
    out.sort_unstable();
    out
}

/// All connected **hole-free** configurations of `n` particles up to
/// translation.
#[must_use]
pub fn hole_free_shapes(n: usize) -> Vec<Vec<Node>> {
    shapes(n)
        .into_iter()
        .filter(|shape| {
            let config = Configuration::new(shape.iter().map(|&nd| (nd, Color::C1)))
                .expect("enumerated shapes have distinct nodes");
            !config.has_holes()
        })
        .collect()
}

/// Histogram `perimeter → count` over all connected hole-free configurations
/// of `n` particles — the quantity bounded by Lemma 1 (`≤ ν^k` configurations
/// of perimeter `k` for any `ν > 2 + √2` and large `n`).
#[must_use]
pub fn perimeter_counts(n: usize) -> std::collections::BTreeMap<u64, u64> {
    let mut hist = std::collections::BTreeMap::new();
    for shape in hole_free_shapes(n) {
        let config = Configuration::new(shape.into_iter().map(|nd| (nd, Color::C1)))
            .expect("enumerated shapes have distinct nodes");
        *hist.entry(config.perimeter()).or_insert(0) += 1;
    }
    hist
}

/// All ways to color a shape with exactly `n1` particles of `c₁` (the rest
/// `c₂`), as particle lists ready for [`Configuration::new`].
#[must_use]
pub fn bicolorings(shape: &[Node], n1: usize) -> Vec<Vec<(Node, Color)>> {
    combinations(shape.len(), n1)
        .into_iter()
        .map(|chosen| {
            let chosen: HashSet<usize> = chosen.into_iter().collect();
            shape
                .iter()
                .enumerate()
                .map(|(i, &nd)| {
                    let color = if chosen.contains(&i) {
                        Color::C1
                    } else {
                        Color::C2
                    };
                    (nd, color)
                })
                .collect()
        })
        .collect()
}

/// All colorings of a shape with the given per-class counts (`counts[i]`
/// particles of color `i`) — the `k > 2` generalization of
/// [`bicolorings`] used for the §5 multicolor verification.
///
/// # Panics
///
/// Panics if the counts do not sum to the shape size.
#[must_use]
pub fn multicolorings(shape: &[Node], counts: &[usize]) -> Vec<Vec<(Node, Color)>> {
    assert_eq!(
        counts.iter().sum::<usize>(),
        shape.len(),
        "color counts must sum to the shape size"
    );
    let mut out = Vec::new();
    let mut remaining = counts.to_vec();
    let mut assignment: Vec<u8> = Vec::with_capacity(shape.len());
    fn recurse(
        shape: &[Node],
        remaining: &mut Vec<usize>,
        assignment: &mut Vec<u8>,
        out: &mut Vec<Vec<(Node, Color)>>,
    ) {
        if assignment.len() == shape.len() {
            out.push(
                shape
                    .iter()
                    .zip(assignment.iter())
                    .map(|(&nd, &c)| (nd, Color::new(c)))
                    .collect(),
            );
            return;
        }
        for c in 0..remaining.len() {
            if remaining[c] > 0 {
                remaining[c] -= 1;
                assignment.push(c as u8);
                recurse(shape, remaining, assignment, out);
                assignment.pop();
                remaining[c] += 1;
            }
        }
    }
    recurse(shape, &mut remaining, &mut assignment, &mut out);
    out
}

/// All `k`-subsets of `{0, …, n−1}` in lexicographic order.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    if k > n {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.clone());
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
        }
        if idx[i] == i + n - k {
            return out;
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// The natural logarithm of the unnormalized stationary weight of Lemma 9:
/// `ln[(λγ)^{−p(σ)} · γ^{−h(σ)}] = −p(σ)·ln(λγ) − h(σ)·ln(γ)`.
///
/// This is the numerically safe form: the exponents stay in `f64` (where
/// every reachable perimeter and hetero-count is exactly representable —
/// no `as i32` wrap), and nothing is exponentiated, so the result is
/// finite wherever the linear-space weight would underflow to `0` or
/// overflow to `∞`. Use it whenever weights are compared or normalized
/// across configurations (see [`ExactSeparationChain::lemma9_distribution`]).
#[must_use]
pub fn stationary_log_weight(config: &Configuration, bias: Bias) -> f64 {
    let lg = bias.lambda() * bias.gamma();
    -(config.perimeter() as f64) * lg.ln() - (config.hetero_edge_count() as f64) * bias.gamma().ln()
}

/// The unnormalized stationary weight of Lemma 9:
/// `(λγ)^{−p(σ)} · γ^{−h(σ)}`, computed as
/// `exp(`[`stationary_log_weight`]`)`.
///
/// On systems large enough (or biases extreme enough) that the true weight
/// leaves `f64` range, this saturates cleanly to `0` or `∞` — it no longer
/// wraps the exponent through `i32` (which could flip its sign for
/// astronomically large systems) and it never produces `NaN`. Prefer
/// [`stationary_log_weight`] for ratio or normalization arithmetic, where
/// saturation would still lose the answer.
#[must_use]
pub fn stationary_weight(config: &Configuration, bias: Bias) -> f64 {
    stationary_log_weight(config, bias).exp()
}

/// Chain `M` on the exact state space of all connected hole-free bicolored
/// configurations of `n` particles (`n1` of color `c₁`), for use with
/// [`sops_chains::TransitionMatrix`].
///
/// # Example
///
/// ```
/// use sops_chains::TransitionMatrix;
/// use sops_core::enumerate::ExactSeparationChain;
/// use sops_core::{Bias, SeparationChain};
///
/// let chain = SeparationChain::new(Bias::new(2.0, 3.0)?);
/// let exact = ExactSeparationChain::new(chain, 3, 1);
/// let matrix = TransitionMatrix::build(&exact);
/// assert!(matrix.is_irreducible()); // Lemma 8
/// # Ok::<(), sops_core::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ExactSeparationChain {
    chain: SeparationChain,
    counts: Vec<usize>,
}

impl ExactSeparationChain {
    /// Creates the exact chain over `n` particles with `n1` of color `c₁`
    /// (and `n − n1` of `c₂`).
    ///
    /// # Panics
    ///
    /// Panics if `n1 > n` or `n = 0`.
    #[must_use]
    pub fn new(chain: SeparationChain, n: usize, n1: usize) -> Self {
        assert!(n1 <= n, "n1 = {n1} exceeds n = {n}");
        Self::with_counts(chain, &[n1, n - n1])
    }

    /// Creates the exact chain with arbitrary per-color counts — the §5
    /// multicolor generalization (`counts[i]` particles of color `i`).
    ///
    /// # Panics
    ///
    /// Panics if the counts sum to 0.
    #[must_use]
    pub fn with_counts(chain: SeparationChain, counts: &[usize]) -> Self {
        assert!(
            counts.iter().sum::<usize>() >= 1,
            "need at least one particle"
        );
        ExactSeparationChain {
            chain,
            counts: counts.to_vec(),
        }
    }

    /// The underlying sampling chain.
    #[must_use]
    pub fn chain(&self) -> &SeparationChain {
        &self.chain
    }

    /// The exact stationary distribution of Lemma 9 over `matrix_states`,
    /// normalized.
    ///
    /// Normalization happens in log space (max-shifted exponentials —
    /// "log-sum-exp"): the largest weight is scaled to `exp(0) = 1` before
    /// anything is exponentiated, so the distribution stays finite and
    /// sums to 1 even where every raw weight `(λγ)^{−p} γ^{−h}` underflows
    /// `f64` — a regime where the naive `w / Σw` form returns `0/0 = NaN`
    /// across the board.
    #[must_use]
    pub fn lemma9_distribution(&self, states: &[CanonicalForm]) -> Vec<f64> {
        let logs: Vec<f64> = states
            .iter()
            .map(|s| stationary_log_weight(&s.to_configuration(), self.chain.bias()))
            .collect();
        let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = logs.into_iter().map(|l| (l - max).exp()).collect();
        let z: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / z).collect()
    }
}

impl EnumerableChain for ExactSeparationChain {
    type State = CanonicalForm;

    fn states(&self) -> Vec<CanonicalForm> {
        let n: usize = self.counts.iter().sum();
        let mut out = Vec::new();
        for shape in hole_free_shapes(n) {
            for coloring in multicolorings(&shape, &self.counts) {
                let config =
                    Configuration::new(coloring).expect("enumerated shapes have distinct nodes");
                out.push(config.canonical_form());
            }
        }
        out.sort_unstable();
        out
    }

    fn transitions(&self, state: &CanonicalForm) -> Vec<(CanonicalForm, f64)> {
        let config = state.to_configuration();
        let n = config.len();
        let per_proposal = 1.0 / (6.0 * n as f64);
        let mut out = Vec::new();
        for p in 0..n {
            let from = config.position_of(p);
            for dir in DIRECTIONS {
                let to = from.neighbor(dir);
                match config.color_at(to) {
                    None => {
                        if !self.chain.move_valid(&config, from, dir) {
                            continue;
                        }
                        // `from` is always occupied here (it is a particle's
                        // position), so the ratio cannot fail; skip defensively
                        // rather than panic if it ever does.
                        let Ok(ratio) = self.chain.move_ratio(&config, from, to) else {
                            continue;
                        };
                        let ratio = ratio.value().min(1.0);
                        let mut next = config.clone();
                        next.move_particle(p, to);
                        out.push((next.canonical_form(), per_proposal * ratio));
                    }
                    Some(qcolor) => {
                        if !self.chain.swaps_enabled() || qcolor == config.color_of(p) {
                            continue;
                        }
                        let Ok(ratio) = self.chain.swap_ratio(&config, from, to) else {
                            continue;
                        };
                        let ratio = ratio.value().min(1.0);
                        let mut next = config.clone();
                        next.swap(from, to);
                        out.push((next.canonical_form(), per_proposal * ratio));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sops_chains::TransitionMatrix;

    #[test]
    fn shape_counts_match_fixed_polyhex_numbers() {
        // OEIS A001207.
        let expect = [1usize, 3, 11, 44, 186, 814];
        for (i, &count) in expect.iter().enumerate() {
            assert_eq!(shapes(i + 1).len(), count, "n = {}", i + 1);
        }
    }

    #[test]
    fn free_shape_counts_match_free_polyhex_numbers() {
        // OEIS A000228.
        let expect = [1usize, 1, 3, 7, 22, 82];
        for (i, &count) in expect.iter().enumerate() {
            assert_eq!(free_shapes(i + 1).len(), count, "n = {}", i + 1);
        }
    }

    #[test]
    fn hole_free_counts() {
        // Holes first appear at n = 6 (the ring); at n = 7 the twelve
        // ring-plus-pendant shapes are holey.
        assert_eq!(hole_free_shapes(5).len(), 186);
        assert_eq!(hole_free_shapes(6).len(), 813);
        assert_eq!(hole_free_shapes(7).len(), 3652 - 12);
    }

    #[test]
    fn min_perimeter_formula_is_exact_up_to_n8() {
        for n in 1..=8usize {
            let min_enumerated = perimeter_counts(n)
                .keys()
                .next()
                .copied()
                .expect("nonempty histogram");
            assert_eq!(
                min_enumerated,
                crate::construct::min_perimeter(n),
                "n = {n}"
            );
        }
    }

    #[test]
    fn perimeter_histogram_total_matches_shape_count() {
        for n in 1..=7usize {
            let hist = perimeter_counts(n);
            let total: u64 = hist.values().sum();
            assert_eq!(total as usize, hole_free_shapes(n).len(), "n = {n}");
        }
    }

    #[test]
    fn combinations_basic() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(5, 0), vec![Vec::<usize>::new()]);
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
        assert!(combinations(2, 3).is_empty());
        // Lexicographic and distinct.
        let c = combinations(5, 3);
        let mut sorted = c.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(c, sorted);
    }

    #[test]
    fn bicolorings_count() {
        let shape = shapes(4).into_iter().next().unwrap();
        assert_eq!(bicolorings(&shape, 2).len(), 6);
        for coloring in bicolorings(&shape, 2) {
            let c1 = coloring.iter().filter(|(_, c)| *c == Color::C1).count();
            assert_eq!(c1, 2);
        }
    }

    #[test]
    fn exact_chain_state_count() {
        // n = 3, n1 = 1: 11 shapes × C(3,1) colorings.
        let exact =
            ExactSeparationChain::new(SeparationChain::new(Bias::new(2.0, 2.0).unwrap()), 3, 1);
        assert_eq!(exact.states().len(), 33);
    }

    #[test]
    fn lemma8_ergodicity_and_lemma9_stationary_distribution_exact() {
        // The centerpiece verification: on the full 3-particle bicolored
        // space, M is ergodic and its transition matrix is in detailed
        // balance with π(σ) ∝ (λγ)^{−p(σ)} γ^{−h(σ)}.
        for (lambda, gamma) in [(2.0, 3.0), (4.0, 0.9), (1.5, 1.0)] {
            let chain = SeparationChain::new(Bias::new(lambda, gamma).unwrap());
            let exact = ExactSeparationChain::new(chain, 3, 1);
            let matrix = TransitionMatrix::build(&exact); // panics if a move left the space (Lemma 6)
            assert!(matrix.is_irreducible(), "λ={lambda}, γ={gamma}");
            assert!(matrix.is_aperiodic());
            let pi = exact.lemma9_distribution(matrix.states());
            assert!(
                matrix.detailed_balance_violation(&pi) < 1e-12,
                "detailed balance fails at λ={lambda}, γ={gamma}"
            );
            assert!(matrix.stationarity_violation(&pi) < 1e-12);
            // Cross-check against power iteration.
            let pi_power = matrix.stationary(1e-13, 2_000_000).unwrap();
            for (a, b) in pi.iter().zip(&pi_power) {
                assert!((a - b).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn lemma9_also_holds_without_swaps() {
        let chain = SeparationChain::without_swaps(Bias::new(3.0, 2.0).unwrap());
        let exact = ExactSeparationChain::new(chain, 3, 1);
        let matrix = TransitionMatrix::build(&exact);
        // Without swaps the 3-particle bicolored space is still irreducible
        // (moves alone suffice; Lemma 8 does not use swaps).
        assert!(matrix.is_irreducible());
        let pi = exact.lemma9_distribution(matrix.states());
        assert!(matrix.detailed_balance_violation(&pi) < 1e-12);
    }

    #[test]
    fn multicolorings_count_is_multinomial() {
        let shape = shapes(4).into_iter().next().unwrap();
        // 4! / (2!·1!·1!) = 12.
        assert_eq!(multicolorings(&shape, &[2, 1, 1]).len(), 12);
        // Multinomial with a zero class degenerates to binomial.
        assert_eq!(multicolorings(&shape, &[2, 2, 0]).len(), 6);
        for coloring in multicolorings(&shape, &[1, 2, 1]) {
            let counts: Vec<usize> = (0..3)
                .map(|c| coloring.iter().filter(|(_, col)| col.index() == c).count())
                .collect();
            assert_eq!(counts, vec![1, 2, 1]);
        }
    }

    #[test]
    fn three_color_exact_chain_satisfies_lemma9() {
        // §5: the proofs are expected to generalize to k > 2; the exact
        // detailed-balance verification does so already at n = 3 with one
        // particle of each color.
        let chain = SeparationChain::new(Bias::new(2.0, 2.5).unwrap());
        let exact = ExactSeparationChain::with_counts(chain, &[1, 1, 1]);
        let matrix = TransitionMatrix::build(&exact);
        // 11 shapes × 3! colorings.
        assert_eq!(matrix.len(), 66);
        assert!(matrix.is_irreducible());
        assert!(matrix.is_aperiodic());
        let pi = exact.lemma9_distribution(matrix.states());
        assert!(matrix.detailed_balance_violation(&pi) < 1e-12);
        assert!(matrix.stationarity_violation(&pi) < 1e-12);
    }

    #[test]
    fn monochromatic_exact_chain_matches_compression_measure() {
        // n1 = 0: single color; stationary distribution reduces to λ^{−p}.
        let chain = SeparationChain::new(Bias::new(2.5, 1.0).unwrap());
        let exact = ExactSeparationChain::new(chain, 4, 0);
        let matrix = TransitionMatrix::build(&exact);
        assert!(matrix.is_irreducible());
        let pi = exact.lemma9_distribution(matrix.states());
        assert!(matrix.detailed_balance_violation(&pi) < 1e-12);
    }

    #[test]
    fn stationary_log_weight_agrees_with_direct_powi_on_small_systems() {
        // Where powi stays in range, exp(log weight) must reproduce it to
        // rounding — the log form is a pure numeric hardening, not a
        // different quantity.
        for (lambda, gamma) in [(2.0, 3.0), (4.0, 0.9), (0.5, 0.6)] {
            let bias = Bias::new(lambda, gamma).unwrap();
            for shape in shapes(4) {
                for coloring in bicolorings(&shape, 2) {
                    let config = Configuration::new(coloring).unwrap();
                    let lg = lambda * gamma;
                    let direct = lg.powi(-(config.perimeter() as i32))
                        * gamma.powi(-(config.hetero_edge_count() as i32));
                    let via_log = stationary_weight(&config, bias);
                    assert!(
                        (via_log - direct).abs() <= 1e-12 * direct.abs(),
                        "λ={lambda} γ={gamma}: {via_log} vs {direct}"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma9_distribution_is_finite_where_linear_weights_underflow() {
        // A 200-particle line has perimeter 2n − 2 = 398, so
        // (λγ)^{−p} = 16^{−398} underflows f64 entirely: the naive
        // weight/Σweight normalization returns 0/0 = NaN for every state.
        // The log-space form must still rank the two colorings correctly.
        let bias = Bias::new(4.0, 4.0).unwrap();
        let nodes = crate::construct::line_nodes(200);
        let halves =
            Configuration::new(crate::construct::bicolor_halves(nodes.clone(), 100)).unwrap();
        let stripes = Configuration::new(crate::construct::bicolor_alternating(nodes)).unwrap();
        assert!(stripes.hetero_edge_count() > halves.hetero_edge_count());

        // The linear-space weights saturate (documented behavior)...
        assert_eq!(stationary_weight(&halves, bias), 0.0);
        assert_eq!(stationary_weight(&stripes, bias), 0.0);
        // ...but the log weights stay finite and ordered,
        let lw_halves = stationary_log_weight(&halves, bias);
        let lw_stripes = stationary_log_weight(&stripes, bias);
        assert!(lw_halves.is_finite() && lw_stripes.is_finite());
        assert!(lw_halves > lw_stripes);
        // ...and the normalized distribution is a real distribution that
        // puts almost all mass on the separated coloring.
        let chain = SeparationChain::new(bias);
        let exact = ExactSeparationChain::new(chain, 200, 100);
        let states = [halves.canonical_form(), stripes.canonical_form()];
        let pi = exact.lemma9_distribution(&states);
        assert!(pi.iter().all(|p| p.is_finite()), "NaN regression: {pi:?}");
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(pi[0] > 0.999_999);
    }
}
