//! Particle colors.

use core::fmt;

/// The immutable color of a particle.
///
/// The paper analyzes `k = 2` color classes and notes (§5) that the algorithm
/// performs well in practice for larger `k`; colors here are small integer
/// ids so the same chain supports any constant `k ≪ n`.
///
/// # Example
///
/// ```
/// use sops_core::Color;
///
/// assert_ne!(Color::C1, Color::C2);
/// assert_eq!(Color::new(0), Color::C1);
/// assert_eq!(Color::C2.index(), 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Color(u8);

impl Color {
    /// The first color class `c₁`.
    pub const C1: Color = Color(0);
    /// The second color class `c₂`.
    pub const C2: Color = Color(1);
    /// The third color class `c₃` (for `k > 2` experiments).
    pub const C3: Color = Color(2);
    /// The fourth color class `c₄` (for `k > 2` experiments).
    pub const C4: Color = Color(3);

    /// Creates a color with the given class index.
    #[inline]
    #[must_use]
    pub const fn new(index: u8) -> Self {
        Color(index)
    }

    /// The class index of this color.
    #[inline]
    #[must_use]
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl From<u8> for Color {
    #[inline]
    fn from(index: u8) -> Self {
        Color(index)
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_distinct() {
        let all = [Color::C1, Color::C2, Color::C3, Color::C4];
        for (i, a) in all.iter().enumerate() {
            assert_eq!(a.index() as usize, i);
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn display_is_one_based() {
        assert_eq!(Color::C1.to_string(), "c1");
        assert_eq!(Color::new(6).to_string(), "c7");
    }

    #[test]
    fn from_u8() {
        assert_eq!(Color::from(3u8), Color::C4);
    }
}
