//! Markov chain `M` for separation and integration (Algorithm 1).

use rand::{Rng, RngExt as _};

use sops_chains::metropolis::{self, PowerRatio, PowerTable};
use sops_chains::telemetry::ClassifiedChain;
use sops_chains::MarkovChain;
use sops_lattice::{Direction, Node, DIRECTIONS, RING_FROM_SIDE, RING_TO_SIDE};

use crate::{properties, Bias, ChainStateError, Configuration, StepOutcome};

/// The stochastic, local, distributed separation algorithm as a centralized
/// Markov chain (Algorithm 1 of the paper).
///
/// Each step activates a uniformly random particle `P` (color `c_i`,
/// location `ℓ`) and a uniformly random neighboring location `ℓ′`:
///
/// * **Move** (`ℓ′` unoccupied): valid when `|N(ℓ)| ≠ 5` and Property 4 or 5
///   holds; accepted with probability `min(1, λ^{e′−e} · γ^{e′_i−e_i})`.
/// * **Swap** (`ℓ′` occupied by `Q` of color `c_j ≠ c_i`): accepted with
///   probability `min(1, γ^{|N_i(ℓ′)∖{P}| − |N_i(ℓ)| + |N_j(ℓ)∖{Q}| − |N_j(ℓ′)|})`.
///   Swap moves are not needed for correctness (§2.3); disable them with
///   [`SeparationChain::without_swaps`] to reproduce the paper's ablation
///   ("separation still occurs … but takes much longer").
///
/// Started from any connected configuration, the chain keeps the system
/// connected, eventually removes all holes and never reintroduces one
/// (Lemma 6), and converges to the stationary distribution
/// `π(σ) ∝ (λγ)^{−p(σ)} γ^{−h(σ)}` over connected hole-free configurations
/// (Lemma 9).
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use sops_chains::MarkovChain;
/// use sops_core::{construct, Bias, SeparationChain};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut config = construct::hexagonal_bicolored(30, 15)?;
/// let initial_hetero = config.hetero_edge_count();
/// let chain = SeparationChain::new(Bias::new(4.0, 4.0)?);
/// chain.run(&mut config, 200_000, &mut rng);
/// // Strong same-color bias drives heterogeneous edges down.
/// assert!(config.hetero_edge_count() < initial_hetero);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeparationChain {
    bias: Bias,
    swaps: bool,
    tables: KernelTables,
}

/// The chain's precomputed λ/γ [`PowerTable`]s — the kernels' replacement
/// for per-accept `powi`. Every Metropolis exponent a proposal can produce
/// lies inside the tables' exactly-covered range (move exponents in
/// `[−5, 5]`, swap exponents in `[−10, 10]` vs. a ±12 table), so lookups are
/// bit-identical to `PowerRatio::value()` and the table-driven kernels stay
/// pinned to the `propose_reference` oracle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct KernelTables {
    lambda: PowerTable,
    gamma: PowerTable,
}

impl KernelTables {
    fn new(bias: Bias) -> Self {
        let tables = KernelTables {
            lambda: PowerTable::new(bias.lambda()),
            gamma: PowerTable::new(bias.gamma()),
        };
        debug_assert!(tables.lambda.audit().is_ok() && tables.gamma.audit().is_ok());
        tables
    }

    /// `λ^{Δe} · γ^{Δe_i}` — a move's acceptance ratio, bit-identical to
    /// `PowerRatio::new([λ, γ], [Δe, Δe_i]).value()`.
    #[inline]
    pub(crate) fn move_value(&self, de: i32, dei: i32) -> f64 {
        self.lambda.pow(de) * self.gamma.pow(dei)
    }

    /// `γ^{gain}` — a swap's acceptance ratio, bit-identical to
    /// `PowerRatio::new([γ], [gain]).value()`.
    #[inline]
    pub(crate) fn swap_value(&self, gain: i32) -> f64 {
        self.gamma.pow(gain)
    }
}

impl SeparationChain {
    /// Creates the chain with swap moves enabled (the paper's default).
    #[must_use]
    pub fn new(bias: Bias) -> Self {
        SeparationChain {
            bias,
            swaps: true,
            tables: KernelTables::new(bias),
        }
    }

    /// Creates the chain with swap moves disabled.
    ///
    /// The chain remains correct (Lemmas 6–9 never rely on swaps) but
    /// converges much more slowly in practice, since interior particles can
    /// only change neighborhoods by traveling along the boundary.
    #[must_use]
    pub fn without_swaps(bias: Bias) -> Self {
        SeparationChain {
            bias,
            swaps: false,
            tables: KernelTables::new(bias),
        }
    }

    /// The chain's power tables (for the batched engine in [`crate::batch`]).
    #[inline]
    pub(crate) fn tables(&self) -> &KernelTables {
        &self.tables
    }

    /// Runs the Metropolis filter for a move with exponents `(Δe, Δe_i)`
    /// through the power tables: certainty by sign inspection (no draw),
    /// then `accept` on the table-evaluated ratio (draws only when the
    /// ratio is < 1) — draw-for-draw and bit-for-bit what
    /// `PowerRatio::new([λ, γ], [Δe, Δe_i]).accept(rng)` does, minus the
    /// `powi` calls.
    #[inline]
    pub(crate) fn metropolis_move<R: Rng + ?Sized>(&self, de: i32, dei: i32, rng: &mut R) -> bool {
        (metropolis::factor_certainly_ge_one(self.bias.lambda(), de)
            && metropolis::factor_certainly_ge_one(self.bias.gamma(), dei))
            || metropolis::accept(self.tables.move_value(de, dei), rng)
    }

    /// The swap counterpart of [`SeparationChain::metropolis_move`]:
    /// equivalent to `PowerRatio::new([γ], [gain]).accept(rng)`.
    #[inline]
    pub(crate) fn metropolis_swap<R: Rng + ?Sized>(&self, gain: i32, rng: &mut R) -> bool {
        metropolis::factor_certainly_ge_one(self.bias.gamma(), gain)
            || metropolis::accept(self.tables.swap_value(gain), rng)
    }

    /// The bias parameters `(λ, γ)`.
    #[must_use]
    pub fn bias(&self) -> Bias {
        self.bias
    }

    /// Whether swap moves are enabled.
    #[must_use]
    pub fn swaps_enabled(&self) -> bool {
        self.swaps
    }

    /// The Metropolis acceptance ratio for moving the particle at `from`
    /// (currently contracted there) to the adjacent unoccupied `to`, given
    /// its neighbor counts are already known to permit the move.
    ///
    /// Exposed for the exact transition-matrix construction and the amoebot
    /// translation, which must agree with the sampler bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`ChainStateError::UnoccupiedSource`] when `from` holds no
    /// particle — a caller logic error (or corrupted state), surfaced as a
    /// typed error rather than a panic so experiment drivers can skip the
    /// proposal, audit the state, and degrade gracefully.
    pub fn move_ratio(
        &self,
        config: &Configuration,
        from: Node,
        to: Node,
    ) -> Result<PowerRatio<2>, ChainStateError> {
        let color = config
            .color_at(from)
            .ok_or(ChainStateError::UnoccupiedSource(from))?;
        let e = config.occupied_neighbors(from);
        let e_new = config.occupied_neighbors_excluding(to, from);
        let ei = config.colored_neighbors(from, color);
        let ei_new = config.colored_neighbors_excluding(to, color, from);
        Ok(PowerRatio::new(
            [self.bias.lambda(), self.bias.gamma()],
            [e_new - e, ei_new - ei],
        ))
    }

    /// The Metropolis acceptance ratio for swapping the particles at the
    /// adjacent nodes `a` (color `c_i`) and `b` (color `c_j`).
    ///
    /// # Errors
    ///
    /// Returns [`ChainStateError::UnoccupiedSource`] when `a` holds no
    /// particle and [`ChainStateError::UnoccupiedTarget`] when `b` holds
    /// none.
    pub fn swap_ratio(
        &self,
        config: &Configuration,
        a: Node,
        b: Node,
    ) -> Result<PowerRatio<1>, ChainStateError> {
        let ci = config
            .color_at(a)
            .ok_or(ChainStateError::UnoccupiedSource(a))?;
        let cj = config
            .color_at(b)
            .ok_or(ChainStateError::UnoccupiedTarget(b))?;
        // |N_i(ℓ′)∖{P}| − |N_i(ℓ)| + |N_j(ℓ)∖{Q}| − |N_j(ℓ′)|
        let gain_i = config.colored_neighbors_excluding(b, ci, a) - config.colored_neighbors(a, ci);
        let gain_j = config.colored_neighbors_excluding(a, cj, b) - config.colored_neighbors(b, cj);
        Ok(PowerRatio::new([self.bias.gamma()], [gain_i + gain_j]))
    }

    /// Whether the particle at `from` may move one step in direction `dir`
    /// under the chain's validity conditions: target unoccupied, `|N(ℓ)| ≠ 5`,
    /// and Property 4 or 5.
    #[must_use]
    pub fn move_valid(
        &self,
        config: &Configuration,
        from: Node,
        dir: sops_lattice::Direction,
    ) -> bool {
        let to = from.neighbor(dir);
        !config.is_occupied(to)
            && config.occupied_neighbors(from) != 5
            && properties::movement_allowed(config, from, dir)
    }

    /// Performs one transition, reporting *what happened* as a typed
    /// [`StepOutcome`] — which guard rejected a move, whether the Metropolis
    /// filter fired, or why an occupied target held.
    ///
    /// This is the real transition function; [`MarkovChain::step`] is a thin
    /// wrapper returning [`StepOutcome::accepted`]. Both consume the exact
    /// same RNG stream (particle index, direction, then lazily the filter's
    /// uniform draw), so instrumenting a run cannot perturb it.
    pub fn step_detailed<R: Rng + ?Sized>(
        &self,
        config: &mut Configuration,
        rng: &mut R,
    ) -> StepOutcome {
        // Step 1–2: uniform particle, uniform neighboring location, q ~ U(0,1)
        // (q is drawn lazily inside the Metropolis filter).
        let p = rng.random_range(0..config.len());
        let dir = DIRECTIONS[rng.random_range(0..6usize)];
        self.propose(config, p, dir, rng)
    }

    /// Evaluates (and, if accepted, executes) the specific proposal
    /// "particle `particle` attempts direction `dir`", classifying the
    /// result. [`SeparationChain::step_detailed`] is this with the particle
    /// and direction drawn uniformly; exposing the deterministic part lets
    /// tests pin a proposal and assert its exact rejection reason.
    ///
    /// This is the *fused* proposal kernel. The target is probed first, so
    /// the two 1-probe holds (same color, swaps disabled) — the bulk of all
    /// proposals on a compressed configuration — return immediately. Every
    /// proposal that reaches a filter then makes one pass over the 8-node
    /// combined neighborhood ([`Configuration::ring_gather`], eight
    /// occupancy probes, no heap allocation), which yields the
    /// `|N(ℓ)| = 5` guard, the Property-4/5 check (a
    /// [`properties::MOVEMENT_ALLOWED`] table load), and every Metropolis
    /// exponent as a masked popcount — at most 9 probes per proposal where
    /// the unfused path re-probes overlapping neighborhoods ~39 times. The
    /// acceptance ratio itself comes from the chain's precomputed λ/γ power
    /// tables ([`sops_chains::metropolis::PowerTable`]) instead of per-accept
    /// `powi`, with lookups bit-identical to `PowerRatio::value()` over the
    /// kernel's entire exponent range. It is
    /// RNG-stream- and state-identical to
    /// [`SeparationChain::propose_reference`], the unfused slow path kept as
    /// the testing oracle; the equivalence is pinned bit-for-bit by the
    /// `kernel_equivalence` test suite.
    ///
    /// The RNG is consulted only for the Metropolis filter's uniform draw,
    /// and only when the acceptance probability is strictly below 1.
    ///
    /// # Panics
    ///
    /// Panics if `particle ≥ config.len()`.
    pub fn propose<R: Rng + ?Sized>(
        &self,
        config: &mut Configuration,
        particle: usize,
        dir: Direction,
        rng: &mut R,
    ) -> StepOutcome {
        let from = config.position_of(particle);
        let to = from.neighbor(dir);

        match config.color_at(to) {
            None => {
                // Steps 3–8: expansion move. With the target unoccupied, the
                // source's occupied neighbors are exactly the FROM-side ring
                // positions and the vacated-source neighbor counts at the
                // target are exactly the TO-side positions.
                let ring = config.ring_gather(from, dir);
                let e = ring.occupied_in(RING_FROM_SIDE);
                if e == 5 {
                    return StepOutcome::MoveRejectedFiveNeighbors; // condition (i)
                }
                if !properties::MOVEMENT_ALLOWED[ring.occupancy as usize] {
                    return StepOutcome::MoveRejectedProperty; // condition (ii)
                }
                let color = config.color_of(particle);
                let e_new = ring.occupied_in(RING_TO_SIDE);
                let ei = ring.colored_in(RING_FROM_SIDE, color);
                let ei_new = ring.colored_in(RING_TO_SIDE, color);
                if !self.metropolis_move(e_new - e, ei_new - ei, rng) {
                    return StepOutcome::MoveRejectedMetropolis;
                }
                match config.try_move_particle(particle, to) {
                    Ok(()) => StepOutcome::MoveAccepted,
                    Err(_) => StepOutcome::InvalidStateHold,
                }
            }
            Some(qcolor) => {
                // Steps 9–10: swap move. Both holds return on the target
                // probe alone — no ring gather, no RNG stream consumption.
                let ci = config.color_of(particle);
                if qcolor == ci {
                    return StepOutcome::SameColorHold;
                }
                if !self.swaps {
                    return StepOutcome::TargetOccupiedHold;
                }
                // |N_i(ℓ′)∖{P}| − |N_i(ℓ)| + |N_j(ℓ)∖{Q}| − |N_j(ℓ′)|; the
                // pair's own (heterogeneous) edge never enters either term.
                let ring = config.ring_gather(from, dir);
                let gain_i =
                    ring.colored_in(RING_TO_SIDE, ci) - ring.colored_in(RING_FROM_SIDE, ci);
                let gain_j =
                    ring.colored_in(RING_FROM_SIDE, qcolor) - ring.colored_in(RING_TO_SIDE, qcolor);
                if !self.metropolis_swap(gain_i + gain_j, rng) {
                    return StepOutcome::SwapRejectedMetropolis;
                }
                match config.try_swap(from, to) {
                    Ok(()) => StepOutcome::SwapAccepted,
                    Err(_) => StepOutcome::InvalidStateHold,
                }
            }
        }
    }

    /// The unfused reference implementation of [`SeparationChain::propose`]:
    /// independent [`Configuration`] probe sweeps plus
    /// [`properties::movement_allowed`], [`SeparationChain::move_ratio`] and
    /// [`SeparationChain::swap_ratio`].
    ///
    /// This is the slow path the fused kernel is proven against — it must
    /// produce the same [`StepOutcome`], the same state mutation, and
    /// consume the same RNG stream on every proposal. It is kept as a
    /// first-class API (not test-only code) so the exact transition-matrix
    /// construction, the amoebot translation, and the equivalence suite all
    /// share one oracle.
    ///
    /// # Panics
    ///
    /// Panics if `particle ≥ config.len()`.
    pub fn propose_reference<R: Rng + ?Sized>(
        &self,
        config: &mut Configuration,
        particle: usize,
        dir: Direction,
        rng: &mut R,
    ) -> StepOutcome {
        let from = config.position_of(particle);
        let to = from.neighbor(dir);

        match config.color_at(to) {
            None => {
                // Steps 3–8: expansion move.
                if config.occupied_neighbors(from) == 5 {
                    return StepOutcome::MoveRejectedFiveNeighbors; // condition (i)
                }
                if !properties::movement_allowed(config, from, dir) {
                    return StepOutcome::MoveRejectedProperty; // condition (ii)
                }
                // The source is the activated particle's own position, so
                // the ratio can only fail on a corrupted configuration.
                let Ok(ratio) = self.move_ratio(config, from, to) else {
                    return StepOutcome::InvalidStateHold;
                };
                if !ratio.accept(rng) {
                    return StepOutcome::MoveRejectedMetropolis;
                }
                match config.try_move_particle(particle, to) {
                    Ok(()) => StepOutcome::MoveAccepted,
                    Err(_) => StepOutcome::InvalidStateHold,
                }
            }
            Some(qcolor) => {
                // Steps 9–10: swap move. Both holds return before the filter
                // draws, so they leave the RNG stream untouched.
                if qcolor == config.color_of(particle) {
                    return StepOutcome::SameColorHold;
                }
                if !self.swaps {
                    return StepOutcome::TargetOccupiedHold;
                }
                let Ok(ratio) = self.swap_ratio(config, from, to) else {
                    return StepOutcome::InvalidStateHold;
                };
                if !ratio.accept(rng) {
                    return StepOutcome::SwapRejectedMetropolis;
                }
                match config.try_swap(from, to) {
                    Ok(()) => StepOutcome::SwapAccepted,
                    Err(_) => StepOutcome::InvalidStateHold,
                }
            }
        }
    }
}

impl MarkovChain for SeparationChain {
    type State = Configuration;

    fn step<R: Rng + ?Sized>(&self, config: &mut Configuration, rng: &mut R) -> bool {
        self.step_detailed(config, rng).accepted()
    }
}

impl ClassifiedChain for SeparationChain {
    type Outcome = StepOutcome;

    fn step_classified<R: Rng + ?Sized>(
        &self,
        config: &mut Configuration,
        rng: &mut R,
    ) -> StepOutcome {
        self.step_detailed(config, rng)
    }
}

/// The PODC '16 compression chain: the monochromatic special case of
/// [`SeparationChain`] with `γ = 1`.
///
/// With a single color every edge is homogeneous, `h(σ) = 0`, and the
/// stationary distribution reduces to `π(σ) ∝ λ^{−p(σ)}` — the compression
/// measure. Cannon et al. (PODC '16) prove `λ > 2 + √2` yields
/// α-compression w.h.p. and `λ < 2.17` yields expansion.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use sops_chains::MarkovChain;
/// use sops_core::{construct, CompressionChain};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let mut config = construct::line_monochromatic(24)?;
/// let chain = CompressionChain::new(4.0)?;
/// let p0 = config.perimeter();
/// chain.run(&mut config, 300_000, &mut rng);
/// assert!(config.perimeter() < p0); // the line compresses
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompressionChain {
    inner: SeparationChain,
}

impl CompressionChain {
    /// Creates the compression chain with bias `λ`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ConfigError::InvalidBias`] if `λ` is not strictly
    /// positive and finite.
    pub fn new(lambda: f64) -> Result<Self, crate::ConfigError> {
        Ok(CompressionChain {
            inner: SeparationChain::new(Bias::new(lambda, 1.0)?),
        })
    }

    /// The compression bias `λ`.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.inner.bias().lambda()
    }
}

impl MarkovChain for CompressionChain {
    type State = Configuration;

    fn step<R: Rng + ?Sized>(&self, config: &mut Configuration, rng: &mut R) -> bool {
        self.inner.step(config, rng)
    }
}

impl ClassifiedChain for CompressionChain {
    type Outcome = StepOutcome;

    fn step_classified<R: Rng + ?Sized>(
        &self,
        config: &mut Configuration,
        rng: &mut R,
    ) -> StepOutcome {
        self.inner.step_detailed(config, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{construct, Color};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_invariant_check(chain: &SeparationChain, steps: u64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut config = construct::hexagonal_bicolored(25, 12).unwrap();
        assert!(config.is_connected());
        for step in 0..steps {
            chain.step(&mut config, &mut rng);
            if step % 500 == 0 {
                assert!(config.is_connected(), "disconnected at step {step}");
                let (e, h) = config.recount();
                assert_eq!(config.edge_count(), e, "edge count drift at {step}");
                assert_eq!(config.hetero_edge_count(), h, "hetero drift at {step}");
            }
        }
    }

    #[test]
    fn connectivity_and_counters_preserved_over_long_runs() {
        let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
        run_invariant_check(&chain, 20_000, 11);
        let chain = SeparationChain::new(Bias::new(1.5, 0.8).unwrap());
        run_invariant_check(&chain, 20_000, 12);
    }

    #[test]
    fn hole_free_configurations_stay_hole_free() {
        // Lemma 6, second half: once hole-free, never holey again.
        let mut rng = StdRng::seed_from_u64(99);
        let mut config = construct::hexagonal_bicolored(19, 9).unwrap();
        assert!(!config.has_holes());
        let chain = SeparationChain::new(Bias::new(2.0, 3.0).unwrap());
        for step in 0..10_000 {
            chain.step(&mut config, &mut rng);
            if step % 250 == 0 {
                assert!(!config.has_holes(), "hole created by step {step}");
            }
        }
        assert!(!config.has_holes());
    }

    #[test]
    fn initial_holes_shrink_to_at_most_a_single_node() {
        // Lemma 6, first half. Under the literal "exactly one" reading of
        // Property 4 (which Lemma 7's reversibility requires), particles
        // flow into large holes along their boundaries but the final
        // single-node fill is blocked — a size-1 hole has both common
        // neighbors occupied and connected, violating "exactly one". We
        // therefore verify the shrinkage: a 7-node hole collapses until the
        // interior boundary is at most that of one empty node, and the hole
        // count never grows.
        let mut rng = StdRng::seed_from_u64(5);
        let hole = sops_lattice::region::Region::hexagon(1);
        let particles: Vec<_> = sops_lattice::region::Region::hexagon(3)
            .iter()
            .filter(|n| !hole.contains(*n))
            .map(|n| (n, Color::C1))
            .collect();
        let mut config = Configuration::new(particles).unwrap();
        assert_eq!(config.hole_count(), 1);
        let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
        for step in 0..200_000u64 {
            chain.step(&mut config, &mut rng);
            if step % 2_000 == 0 {
                assert!(config.hole_count() <= 1, "hole split/created at {step}");
            }
        }
        // Interior boundary length = identity perimeter − outer walk; a
        // single empty node contributes 3 (its enclosing triangle-walk),
        // the initial 7-node hole contributed 12.
        let interior = config.perimeter() - config.boundary_walk_length();
        assert!(interior <= 3, "hole failed to shrink: interior {interior}");
    }

    #[test]
    fn swaps_disabled_never_swaps() {
        // With two colors on a rigid 2-particle system no move can change
        // which node holds which color unless a swap fires.
        let mut rng = StdRng::seed_from_u64(3);
        let chain = SeparationChain::without_swaps(Bias::new(4.0, 4.0).unwrap());
        assert!(!chain.swaps_enabled());
        let mut config = Configuration::new([
            (sops_lattice::Node::new(0, 0), Color::C1),
            (sops_lattice::Node::new(1, 0), Color::C2),
        ])
        .unwrap();
        for _ in 0..5_000 {
            chain.step(&mut config, &mut rng);
            // Particle 0 keeps color C1 and no swap means the *particle*
            // identity at each canonical position never exchanges; verify via
            // hetero count staying 1 and the two particles staying adjacent.
            assert_eq!(config.hetero_edge_count(), 1);
            assert!(config.position_of(0).is_adjacent(config.position_of(1)));
        }
    }

    #[test]
    fn swap_ratio_is_symmetric_in_roles() {
        // The acceptance exponent must be identical whether P or Q initiates.
        let config = Configuration::new([
            (sops_lattice::Node::new(0, 0), Color::C1),
            (sops_lattice::Node::new(1, 0), Color::C2),
            (sops_lattice::Node::new(0, 1), Color::C1),
            (sops_lattice::Node::new(1, -1), Color::C2),
        ])
        .unwrap();
        let chain = SeparationChain::new(Bias::new(4.0, 3.0).unwrap());
        let a = sops_lattice::Node::new(0, 0);
        let b = sops_lattice::Node::new(1, 0);
        let r1 = chain.swap_ratio(&config, a, b).unwrap();
        let r2 = chain.swap_ratio(&config, b, a).unwrap();
        assert!((r1.value() - r2.value()).abs() < 1e-15);
    }

    #[test]
    fn ratios_return_typed_errors_on_unoccupied_nodes() {
        use crate::ChainStateError;
        let config = Configuration::new([
            (sops_lattice::Node::new(0, 0), Color::C1),
            (sops_lattice::Node::new(1, 0), Color::C2),
        ])
        .unwrap();
        let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
        let empty = sops_lattice::Node::new(0, 1);
        let occupied = sops_lattice::Node::new(0, 0);
        assert_eq!(
            chain.move_ratio(&config, empty, occupied).unwrap_err(),
            ChainStateError::UnoccupiedSource(empty)
        );
        assert_eq!(
            chain.swap_ratio(&config, empty, occupied).unwrap_err(),
            ChainStateError::UnoccupiedSource(empty)
        );
        assert_eq!(
            chain.swap_ratio(&config, occupied, empty).unwrap_err(),
            ChainStateError::UnoccupiedTarget(empty)
        );
        let err = chain.move_ratio(&config, empty, occupied).unwrap_err();
        assert!(err.to_string().contains("holds no particle"));
    }

    #[test]
    fn move_ratio_matches_manual_count() {
        // Triangle of c1,c1,c2; move the c2 particle (0,1) east to (1,1):
        // e = 2 → e' = 1 (only (1,0); (0,1) excluded as vacated source),
        // e_i = 0 → e'_i = 0 for color c2. Ratio = λ^{-1} γ^{0}.
        let config = Configuration::new([
            (sops_lattice::Node::new(0, 0), Color::C1),
            (sops_lattice::Node::new(1, 0), Color::C1),
            (sops_lattice::Node::new(0, 1), Color::C2),
        ])
        .unwrap();
        let chain = SeparationChain::new(Bias::new(5.0, 7.0).unwrap());
        let ratio = chain
            .move_ratio(
                &config,
                sops_lattice::Node::new(0, 1),
                sops_lattice::Node::new(1, 1),
            )
            .unwrap();
        assert!((ratio.value() - 1.0 / 5.0).abs() < 1e-15);
    }

    #[test]
    fn reversibility_of_moves() {
        // Lemma 7: every executed move has a positive-probability reverse.
        let mut rng = StdRng::seed_from_u64(21);
        let chain = SeparationChain::new(Bias::new(3.0, 2.0).unwrap());
        let mut config = construct::hexagonal_bicolored(12, 6).unwrap();
        for _ in 0..3_000 {
            let before = config.canonical_form();
            let moved = chain.step(&mut config, &mut rng);
            if !moved {
                continue;
            }
            // Find the reverse transition among all (particle, dir) proposals
            // of the new state and check it has positive probability.
            let mut reverse_found = false;
            for p in 0..config.len() {
                let from = config.position_of(p);
                for dir in DIRECTIONS {
                    let to = from.neighbor(dir);
                    let reachable = match config.color_at(to) {
                        None => chain.move_valid(&config, from, dir),
                        Some(c) => c != config.color_of(p),
                    };
                    if !reachable {
                        continue;
                    }
                    let mut trial = config.clone();
                    match trial.color_at(to) {
                        None => {
                            let idx = trial.index_at(from).unwrap();
                            trial.move_particle(idx, to);
                        }
                        Some(_) => trial.swap(from, to),
                    }
                    if trial.canonical_form() == before {
                        reverse_found = true;
                        break;
                    }
                }
                if reverse_found {
                    break;
                }
            }
            assert!(reverse_found, "executed move has no reverse");
        }
    }

    #[test]
    fn compression_chain_is_gamma_one() {
        let c = CompressionChain::new(6.0).unwrap();
        assert_eq!(c.lambda(), 6.0);
        assert!(CompressionChain::new(-1.0).is_err());
    }

    /// An RNG that panics if the chain consults it — proves a code path
    /// never draws — or, scripted with values, replays them verbatim.
    struct ScriptedRng(Vec<u64>);

    impl ScriptedRng {
        fn forbidden() -> Self {
            ScriptedRng(Vec::new())
        }
    }

    impl Rng for ScriptedRng {
        fn next_u64(&mut self) -> u64 {
            self.0
                .pop()
                .expect("this code path must not consult the RNG")
        }
    }

    fn tri() -> Configuration {
        // (0,0) C1 [particle 0], (1,0) C1 [particle 1], (0,1) C2 [particle 2].
        Configuration::new([
            (sops_lattice::Node::new(0, 0), Color::C1),
            (sops_lattice::Node::new(1, 0), Color::C1),
            (sops_lattice::Node::new(0, 1), Color::C2),
        ])
        .unwrap()
    }

    #[test]
    fn propose_classifies_same_color_hold_without_drawing() {
        use crate::StepOutcome;
        use sops_lattice::Direction;
        let mut config = tri();
        let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
        // Particle 0 (C1) proposes east into particle 1 (also C1).
        let out = chain.propose(&mut config, 0, Direction::E, &mut ScriptedRng::forbidden());
        assert_eq!(out, StepOutcome::SameColorHold);
        assert!(!out.accepted());
    }

    #[test]
    fn propose_classifies_target_occupied_hold_when_swaps_disabled() {
        use crate::StepOutcome;
        use sops_lattice::Direction;
        let mut config = tri();
        let chain = SeparationChain::without_swaps(Bias::new(4.0, 4.0).unwrap());
        // Particle 0 (C1) proposes north-east into particle 2 (C2): a swap
        // candidate, but swaps are off — and no RNG draw happens.
        let out = chain.propose(&mut config, 0, Direction::NE, &mut ScriptedRng::forbidden());
        assert_eq!(out, StepOutcome::TargetOccupiedHold);
    }

    #[test]
    fn propose_classifies_zero_gain_swap_as_accepted_without_drawing() {
        use crate::StepOutcome;
        use sops_lattice::Direction;
        let mut config = tri();
        let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
        // Swapping particles 0 and 2: gain_i = gain_j = 0 (hand count on
        // the triangle), so γ^0 = 1 certainly accepts — no draw.
        let out = chain.propose(&mut config, 0, Direction::NE, &mut ScriptedRng::forbidden());
        assert_eq!(out, StepOutcome::SwapAccepted);
        assert_eq!(
            config.color_at(sops_lattice::Node::new(0, 0)),
            Some(Color::C2)
        );
    }

    #[test]
    fn propose_classifies_five_neighbor_guard() {
        use crate::StepOutcome;
        use sops_lattice::Direction;
        // Center with exactly 5 occupied neighbors; SE (1,-1) is free.
        let center = sops_lattice::Node::new(0, 0);
        let mut particles = vec![(center, Color::C1)];
        for dir in [
            Direction::E,
            Direction::NE,
            Direction::NW,
            Direction::W,
            Direction::SW,
        ] {
            particles.push((center.neighbor(dir), Color::C2));
        }
        let mut config = Configuration::new(particles).unwrap();
        assert_eq!(config.occupied_neighbors(center), 5);
        let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
        let out = chain.propose(&mut config, 0, Direction::SE, &mut ScriptedRng::forbidden());
        assert_eq!(out, StepOutcome::MoveRejectedFiveNeighbors);
    }

    #[test]
    fn propose_classifies_property_rejection() {
        use crate::StepOutcome;
        use sops_lattice::Direction;
        // A 3-line; lifting the middle particle to (1,1) would disconnect
        // (0,0), so Properties 4/5 must forbid it.
        let mut config = Configuration::new([
            (sops_lattice::Node::new(0, 0), Color::C1),
            (sops_lattice::Node::new(1, 0), Color::C1),
            (sops_lattice::Node::new(2, 0), Color::C1),
        ])
        .unwrap();
        let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
        assert!(!chain.move_valid(&config, sops_lattice::Node::new(1, 0), Direction::NE));
        let out = chain.propose(&mut config, 1, Direction::NE, &mut ScriptedRng::forbidden());
        assert_eq!(out, StepOutcome::MoveRejectedProperty);
    }

    #[test]
    fn propose_classifies_metropolis_move_filter() {
        use crate::StepOutcome;
        use sops_lattice::Direction;
        // Moving particle 2 from (0,1) east to (1,1) loses one edge:
        // ratio = λ^{−1}. With λ = 1/2 the ratio is 2 ≥ 1 — accepted with
        // no draw; with λ = 4 it is 1/4 — a near-1 uniform rejects it.
        let chain = SeparationChain::new(Bias::new(0.5, 1.0).unwrap());
        let mut config = tri();
        let out = chain.propose(&mut config, 2, Direction::E, &mut ScriptedRng::forbidden());
        assert_eq!(out, StepOutcome::MoveAccepted);
        assert_eq!(config.position_of(2), sops_lattice::Node::new(1, 1));

        let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
        let mut config = tri();
        let out = chain.propose(
            &mut config,
            2,
            Direction::E,
            &mut ScriptedRng(vec![u64::MAX]),
        );
        assert_eq!(out, StepOutcome::MoveRejectedMetropolis);
        assert_eq!(config.position_of(2), sops_lattice::Node::new(0, 1));
    }

    #[test]
    fn propose_classifies_metropolis_swap_filter() {
        use crate::StepOutcome;
        use sops_lattice::Direction;
        // C1 C1 C2 C2 line: swapping the middle pair costs one homogeneous
        // neighbor on each side, exponent −2, ratio γ^{−2} = 1/16 < 1.
        let mut config = Configuration::new([
            (sops_lattice::Node::new(0, 0), Color::C1),
            (sops_lattice::Node::new(1, 0), Color::C1),
            (sops_lattice::Node::new(2, 0), Color::C2),
            (sops_lattice::Node::new(3, 0), Color::C2),
        ])
        .unwrap();
        let chain = SeparationChain::new(Bias::new(4.0, 4.0).unwrap());
        let ratio = chain
            .swap_ratio(
                &config,
                sops_lattice::Node::new(1, 0),
                sops_lattice::Node::new(2, 0),
            )
            .unwrap();
        assert!((ratio.value() - 1.0 / 16.0).abs() < 1e-15);
        let out = chain.propose(
            &mut config,
            1,
            Direction::E,
            &mut ScriptedRng(vec![u64::MAX]),
        );
        assert_eq!(out, StepOutcome::SwapRejectedMetropolis);
        assert_eq!(
            config.color_at(sops_lattice::Node::new(1, 0)),
            Some(Color::C1)
        );
    }

    /// Builds one scenario per [`StepOutcome`] class: a configuration, the
    /// chain to run, the proposal `(particle, dir)`, and the scripted draws
    /// (empty = the path must not consult the RNG).
    fn outcome_scenarios() -> Vec<(
        StepOutcome,
        SeparationChain,
        Configuration,
        usize,
        Direction,
    )> {
        use sops_lattice::Node;
        let bias = |l, g| Bias::new(l, g).unwrap();
        let mut scenarios = Vec::new();

        // MoveAccepted: λ < 1 makes an edge-losing move certainly accept.
        scenarios.push((
            StepOutcome::MoveAccepted,
            SeparationChain::new(bias(0.5, 1.0)),
            tri(),
            2,
            Direction::E,
        ));
        // MoveRejectedFiveNeighbors: center of a filled 5-star proposing SE.
        let center = Node::new(0, 0);
        let mut particles = vec![(center, Color::C1)];
        for dir in [
            Direction::E,
            Direction::NE,
            Direction::NW,
            Direction::W,
            Direction::SW,
        ] {
            particles.push((center.neighbor(dir), Color::C2));
        }
        scenarios.push((
            StepOutcome::MoveRejectedFiveNeighbors,
            SeparationChain::new(bias(4.0, 4.0)),
            Configuration::new(particles).unwrap(),
            0,
            Direction::SE,
        ));
        // MoveRejectedProperty: lifting the middle of a 3-line disconnects.
        scenarios.push((
            StepOutcome::MoveRejectedProperty,
            SeparationChain::new(bias(4.0, 4.0)),
            Configuration::new([
                (Node::new(0, 0), Color::C1),
                (Node::new(1, 0), Color::C1),
                (Node::new(2, 0), Color::C1),
            ])
            .unwrap(),
            1,
            Direction::NE,
        ));
        // MoveRejectedMetropolis: λ = 4 edge-losing move, near-1 uniform.
        scenarios.push((
            StepOutcome::MoveRejectedMetropolis,
            SeparationChain::new(bias(4.0, 4.0)),
            tri(),
            2,
            Direction::E,
        ));
        // SwapAccepted: zero-gain unlike-color swap, certain accept.
        scenarios.push((
            StepOutcome::SwapAccepted,
            SeparationChain::new(bias(4.0, 4.0)),
            tri(),
            0,
            Direction::NE,
        ));
        // SwapRejectedMetropolis: C1 C1 C2 C2 line, exponent −2, γ = 4.
        scenarios.push((
            StepOutcome::SwapRejectedMetropolis,
            SeparationChain::new(bias(4.0, 4.0)),
            Configuration::new([
                (Node::new(0, 0), Color::C1),
                (Node::new(1, 0), Color::C1),
                (Node::new(2, 0), Color::C2),
                (Node::new(3, 0), Color::C2),
            ])
            .unwrap(),
            1,
            Direction::E,
        ));
        // SameColorHold: C1 proposes into its C1 neighbor.
        scenarios.push((
            StepOutcome::SameColorHold,
            SeparationChain::new(bias(4.0, 4.0)),
            tri(),
            0,
            Direction::E,
        ));
        // TargetOccupiedHold: unlike-color target but swaps disabled.
        scenarios.push((
            StepOutcome::TargetOccupiedHold,
            SeparationChain::without_swaps(bias(4.0, 4.0)),
            tri(),
            0,
            Direction::NE,
        ));
        // InvalidStateHold: a certainly-accepted edge-losing move meets a
        // corrupted zero edge counter — try_move_particle reports
        // CounterCorruption and the step holds.
        let mut corrupt = tri();
        corrupt.corrupt_edges_for_test(0);
        scenarios.push((
            StepOutcome::InvalidStateHold,
            SeparationChain::new(bias(0.5, 1.0)),
            corrupt,
            2,
            Direction::E,
        ));
        scenarios
    }

    #[test]
    fn every_outcome_class_matches_between_fused_and_reference_kernels() {
        // Satellite coverage: all nine StepOutcome classes are produced by
        // hand-built configurations, and the fused kernel classifies each
        // identically to the unfused reference path (same outcome, same
        // resulting state, same RNG consumption).
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for (expected, chain, config, particle, dir) in outcome_scenarios() {
            let mut fused_config = config.clone();
            let mut ref_config = config.clone();
            // A scripted near-1 draw: paths that reach an uncertain filter
            // reject; paths that must not draw leave it untouched.
            let mut fused_rng = ScriptedRng(vec![u64::MAX]);
            let mut ref_rng = ScriptedRng(vec![u64::MAX]);
            let fused = chain.propose(&mut fused_config, particle, dir, &mut fused_rng);
            let reference = chain.propose_reference(&mut ref_config, particle, dir, &mut ref_rng);
            assert_eq!(fused, expected, "fused misclassified {expected}");
            assert_eq!(reference, expected, "reference misclassified {expected}");
            assert_eq!(
                fused_config.canonical_form(),
                ref_config.canonical_form(),
                "state diverged on {expected}"
            );
            assert_eq!(
                fused_rng.0.len(),
                ref_rng.0.len(),
                "RNG consumption diverged on {expected}"
            );
            seen.insert(expected);
        }
        assert_eq!(seen.len(), StepOutcome::ALL.len(), "a class is missing");
    }

    #[test]
    fn invalid_state_hold_on_swap_counter_corruption() {
        use sops_lattice::Node;
        // γ = 1 certainly accepts the swap; the corrupted hetero counter
        // then rejects the state mutation in both kernels, without drawing.
        let mut config = Configuration::new([
            (Node::new(0, 0), Color::C1),
            (Node::new(1, 0), Color::C2),
            (Node::new(2, 0), Color::C1),
        ])
        .unwrap();
        config.corrupt_hetero_for_test(0);
        let chain = SeparationChain::new(Bias::new(4.0, 1.0).unwrap());
        let mut ref_config = config.clone();
        let out = chain.propose(&mut config, 1, Direction::E, &mut ScriptedRng::forbidden());
        let out_ref = chain.propose_reference(
            &mut ref_config,
            1,
            Direction::E,
            &mut ScriptedRng::forbidden(),
        );
        assert_eq!(out, StepOutcome::InvalidStateHold);
        assert_eq!(out_ref, StepOutcome::InvalidStateHold);
        // The failed swap left both states untouched.
        assert_eq!(config.color_at(Node::new(1, 0)), Some(Color::C2));
        assert_eq!(ref_config.color_at(Node::new(1, 0)), Some(Color::C2));
    }

    #[test]
    fn step_detailed_and_step_consume_identical_rng_streams() {
        // The wrapper relationship makes this structural, but pin it with
        // an explicit bit-for-bit check across a long run anyway.
        let chain = SeparationChain::new(Bias::new(4.0, 2.0).unwrap());
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        let mut config_a = construct::hexagonal_bicolored(20, 10).unwrap();
        let mut config_b = config_a.clone();
        let mut accepted_a = 0u64;
        let mut accepted_b = 0u64;
        for _ in 0..20_000 {
            accepted_a += u64::from(chain.step(&mut config_a, &mut rng_a));
            accepted_b += u64::from(chain.step_detailed(&mut config_b, &mut rng_b).accepted());
        }
        assert_eq!(accepted_a, accepted_b);
        assert_eq!(config_a.canonical_form(), config_b.canonical_form());
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "RNG streams diverged");
    }
}
