//! The locally checkable movement conditions of the separation algorithm.
//!
//! A particle may move from location `ℓ` to an adjacent unoccupied location
//! `ℓ′` only when one of two properties holds (Properties 4 and 5 of the
//! paper). Both are functions of the eight lattice nodes surrounding the pair
//! `{ℓ, ℓ′}` — a strictly local check — and together they guarantee the move
//! neither disconnects the system nor creates a hole (Lemma 6, inherited
//! from the compression paper).
//!
//! # Geometry of the combined neighborhood
//!
//! For adjacent `ℓ` and `ℓ′ = ℓ + d`, the nodes adjacent to `ℓ` or `ℓ′`
//! (excluding the pair itself) form an 8-cycle in `G_Δ`. We index it
//! counterclockwise:
//!
//! ```text
//! index  node
//!   0    ℓ′ + d¹        (d¹ = d rotated 60° ccw, …)
//!   1    ℓ  + d¹   ← common neighbor (S)
//!   2    ℓ  + d²
//!   3    ℓ  + d³
//!   4    ℓ  + d⁴
//!   5    ℓ  + d⁵   ← common neighbor (S)
//!   6    ℓ′ + d⁵
//!   7    ℓ′ + d⁰  (= ℓ′ + d)
//! ```
//!
//! Consecutive ring nodes are lattice-adjacent and no chords exist, so paths
//! "through `N(ℓ ∪ ℓ′)`" are exactly runs of consecutive occupied positions.

use sops_lattice::{Direction, Node};

use crate::Configuration;

/// Ring positions of the two common neighbors `S = N(ℓ) ∩ N(ℓ′)`.
pub const S_POSITIONS: [usize; 2] = [1, 5];

/// The eight nodes of the combined neighborhood of `ℓ` and `ℓ′ = ℓ + d`, in
/// the cyclic order documented at the module level.
#[must_use]
pub fn ring(from: Node, dir: Direction) -> [Node; 8] {
    let to = from.neighbor(dir);
    [
        to.neighbor(dir.rotated_by(1)),
        from.neighbor(dir.rotated_by(1)),
        from.neighbor(dir.rotated_by(2)),
        from.neighbor(dir.rotated_by(3)),
        from.neighbor(dir.rotated_by(4)),
        from.neighbor(dir.rotated_by(5)),
        to.neighbor(dir.rotated_by(5)),
        to.neighbor(dir),
    ]
}

/// Occupancy of the combined neighborhood ring in a configuration.
#[must_use]
pub fn ring_occupancy(config: &Configuration, from: Node, dir: Direction) -> [bool; 8] {
    let ring = ring(from, dir);
    let mut occ = [false; 8];
    for (o, node) in occ.iter_mut().zip(ring) {
        *o = config.is_occupied(node);
    }
    occ
}

/// Property 4 on a ring-occupancy pattern: `|S| ∈ {1, 2}` and every particle
/// in `N(ℓ ∪ ℓ′)` is connected to **exactly one** particle of `S` by a path
/// through `N(ℓ ∪ ℓ′)`.
#[must_use]
pub fn property4(occ: [bool; 8]) -> bool {
    let s_count = usize::from(occ[S_POSITIONS[0]]) + usize::from(occ[S_POSITIONS[1]]);
    if s_count == 0 {
        return false;
    }
    // Occupied positions decompose into maximal runs of consecutive ring
    // indices; each run must contain exactly one occupied S position.
    for component in occupied_components(occ) {
        let s_in_component = component
            .iter()
            .filter(|&&i| S_POSITIONS.contains(&i) && occ[i])
            .count();
        if s_in_component != 1 {
            return false;
        }
    }
    true
}

/// Property 5 on a ring-occupancy pattern: `|S| = 0`, and both
/// `N(ℓ) ∖ {ℓ′}` and `N(ℓ′) ∖ {ℓ}` are nonempty and connected.
///
/// With the common neighbors unoccupied, `N(ℓ) ∖ {ℓ′}` is the occupied
/// subset of ring positions `{2, 3, 4}` and `N(ℓ′) ∖ {ℓ}` of `{6, 7, 0}`;
/// "connected" means the occupied positions form one consecutive run.
#[must_use]
pub fn property5(occ: [bool; 8]) -> bool {
    if occ[S_POSITIONS[0]] || occ[S_POSITIONS[1]] {
        return false;
    }
    side_nonempty_and_connected(occ[2], occ[3], occ[4])
        && side_nonempty_and_connected(occ[6], occ[7], occ[0])
}

fn side_nonempty_and_connected(a: bool, b: bool, c: bool) -> bool {
    match (a, b, c) {
        (false, false, false) => false, // empty
        (true, false, true) => false,   // disconnected
        _ => true,
    }
}

/// Whether a particle at `from` may move to the adjacent unoccupied node in
/// direction `dir`: Property 4 or Property 5 holds.
///
/// This is condition (ii) of Step 6 in Algorithm 1; the caller separately
/// enforces condition (i), `|N(ℓ)| ≠ 5`.
#[must_use]
pub fn movement_allowed(config: &Configuration, from: Node, dir: Direction) -> bool {
    let occ = ring_occupancy(config, from, dir);
    property4(occ) || property5(occ)
}

/// Maximal runs of consecutive occupied ring positions (cyclically).
fn occupied_components(occ: [bool; 8]) -> Vec<Vec<usize>> {
    let occupied_count = occ.iter().filter(|&&b| b).count();
    if occupied_count == 0 {
        return Vec::new();
    }
    if occupied_count == 8 {
        return vec![(0..8).collect()];
    }
    // Start scanning just after an unoccupied position so runs do not wrap.
    let start = (0..8)
        .find(|&i| !occ[i])
        .expect("some position is unoccupied");
    let mut components = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    for k in 1..=8 {
        let i = (start + k) % 8;
        if occ[i] {
            current.push(i);
        } else if !current.is_empty() {
            components.push(core::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        components.push(current);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Color;
    use sops_lattice::DIRECTIONS;

    /// Literal reference implementation of Property 4: build the induced
    /// graph on occupied ring nodes (adjacency = cyclic neighbors) and check
    /// each occupied node reaches exactly one occupied S node.
    fn property4_reference(occ: [bool; 8]) -> bool {
        let s: Vec<usize> = S_POSITIONS.iter().copied().filter(|&i| occ[i]).collect();
        if s.is_empty() {
            return false;
        }
        for v in 0..8 {
            if !occ[v] {
                continue;
            }
            // BFS over occupied ring positions.
            let mut seen = [false; 8];
            seen[v] = true;
            let mut stack = vec![v];
            while let Some(u) = stack.pop() {
                for w in [(u + 1) % 8, (u + 7) % 8] {
                    if occ[w] && !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            let reachable_s = s.iter().filter(|&&i| seen[i]).count();
            if reachable_s != 1 {
                return false;
            }
        }
        true
    }

    /// Literal reference implementation of Property 5.
    fn property5_reference(occ: [bool; 8]) -> bool {
        if occ[1] || occ[5] {
            return false;
        }
        // N(ℓ)\{ℓ'} = occupied among {1,2,3,4,5}; with 1 and 5 empty: {2,3,4}.
        let check_side = |positions: [usize; 3]| -> bool {
            let occupied: Vec<usize> = positions.iter().copied().filter(|&i| occ[i]).collect();
            if occupied.is_empty() {
                return false;
            }
            // Connected within the ring path positions[0]-positions[1]-positions[2].
            if occupied.len() == 2 {
                // Must be adjacent in the path order.
                let idx: Vec<usize> = occupied
                    .iter()
                    .map(|&p| positions.iter().position(|&q| q == p).unwrap())
                    .collect();
                (idx[0] as i32 - idx[1] as i32).abs() == 1
            } else {
                true // 1 or 3 occupied on a path of 3 is always connected
            }
        };
        check_side([2, 3, 4]) && check_side([6, 7, 0])
    }

    #[test]
    fn property4_matches_reference_on_all_256_patterns() {
        for bits in 0u16..256 {
            let occ = core::array::from_fn(|i| bits & (1 << i) != 0);
            assert_eq!(
                property4(occ),
                property4_reference(occ),
                "pattern {bits:#010b}"
            );
        }
    }

    #[test]
    fn property5_matches_reference_on_all_256_patterns() {
        for bits in 0u16..256 {
            let occ = core::array::from_fn(|i| bits & (1 << i) != 0);
            assert_eq!(
                property5(occ),
                property5_reference(occ),
                "pattern {bits:#010b}"
            );
        }
    }

    #[test]
    fn ring_nodes_form_a_chordless_8_cycle() {
        for d in DIRECTIONS {
            let from = Node::new(3, -2);
            let r = ring(from, d);
            let to = from.neighbor(d);
            for (i, node) in r.iter().enumerate() {
                // Consecutive ring nodes adjacent; skipping one is not.
                assert!(node.is_adjacent(r[(i + 1) % 8]), "dir {d} at {i}");
                assert!(!node.is_adjacent(r[(i + 2) % 8]), "chord at {i}, dir {d}");
                // Ring excludes the pair.
                assert_ne!(*node, from);
                assert_ne!(*node, to);
            }
            // S positions are adjacent to both ℓ and ℓ'.
            for &s in &S_POSITIONS {
                assert!(r[s].is_adjacent(from) && r[s].is_adjacent(to));
            }
            // Non-S positions are adjacent to exactly one of the pair.
            for (i, node) in r.iter().enumerate() {
                if !S_POSITIONS.contains(&i) {
                    assert!(node.is_adjacent(from) ^ node.is_adjacent(to), "pos {i}");
                }
            }
        }
    }

    #[test]
    fn isolated_pair_satisfies_neither_property() {
        // A 2-particle configuration moving one particle away from the other:
        // the ring is empty, so no property holds (the move would disconnect).
        let config =
            Configuration::new([(Node::new(0, 0), Color::C1), (Node::new(1, 0), Color::C1)])
                .unwrap();
        // Particle at (0,0) moving W to (-1,0): ring around ((0,0),W) contains
        // (1,0)? (1,0) is adjacent to (0,0) but not to (-1,0): ring position
        // on the ℓ side. The single S... just check the official API:
        assert!(!movement_allowed(&config, Node::new(0, 0), Direction::W));
        // Sliding around the partner is allowed: move NE keeps contact via S.
        assert!(movement_allowed(&config, Node::new(0, 0), Direction::NE));
    }

    #[test]
    fn movement_allowed_uses_configuration_occupancy() {
        // Triangle with an extra tail; moving the tail tip is fine, moving a
        // cut vertex is not.
        let config = Configuration::new([
            (Node::new(0, 0), Color::C1),
            (Node::new(1, 0), Color::C1),
            (Node::new(0, 1), Color::C1),
            (Node::new(-1, 0), Color::C1), // tail attached to (0,0)
        ])
        .unwrap();
        // Tail tip can slide to (-1, 1) (Property 4 via common neighbor (0,0)... )
        assert!(movement_allowed(&config, Node::new(-1, 0), Direction::NE));
    }

    #[test]
    fn property4_blocks_two_sided_contact() {
        // Both S occupied but in separate components each with its own S:
        // occ[1] and occ[5] only → components {1}, {5}: each contains exactly
        // one S → allowed (this is the classic "tunnel" move).
        let mut occ = [false; 8];
        occ[1] = true;
        occ[5] = true;
        assert!(property4(occ));
        // A run connecting both S positions (1..=5): one component with two
        // S particles → forbidden (would create a hole or disconnect).
        let occ = core::array::from_fn(|i| (1..=5).contains(&i));
        assert!(!property4(occ));
    }
}
