//! The locally checkable movement conditions of the separation algorithm.
//!
//! A particle may move from location `ℓ` to an adjacent unoccupied location
//! `ℓ′` only when one of two properties holds (Properties 4 and 5 of the
//! paper). Both are functions of the eight lattice nodes surrounding the pair
//! `{ℓ, ℓ′}` — a strictly local check — and together they guarantee the move
//! neither disconnects the system nor creates a hole (Lemma 6, inherited
//! from the compression paper).
//!
//! # Geometry of the combined neighborhood
//!
//! For adjacent `ℓ` and `ℓ′ = ℓ + d`, the nodes adjacent to `ℓ` or `ℓ′`
//! (excluding the pair itself) form an 8-cycle in `G_Δ`. We index it
//! counterclockwise:
//!
//! ```text
//! index  node
//!   0    ℓ′ + d¹        (d¹ = d rotated 60° ccw, …)
//!   1    ℓ  + d¹   ← common neighbor (S)
//!   2    ℓ  + d²
//!   3    ℓ  + d³
//!   4    ℓ  + d⁴
//!   5    ℓ  + d⁵   ← common neighbor (S)
//!   6    ℓ′ + d⁵
//!   7    ℓ′ + d⁰  (= ℓ′ + d)
//! ```
//!
//! Consecutive ring nodes are lattice-adjacent and no chords exist, so paths
//! "through `N(ℓ ∪ ℓ′)`" are exactly runs of consecutive occupied positions.

use sops_lattice::{ring_offsets, Direction, Node};

use crate::Configuration;

/// Ring positions of the two common neighbors `S = N(ℓ) ∩ N(ℓ′)`.
pub const S_POSITIONS: [usize; 2] = [1, 5];

/// The eight nodes of the combined neighborhood of `ℓ` and `ℓ′ = ℓ + d`, in
/// the cyclic order documented at the module level.
///
/// The per-direction offsets are precomputed at compile time in
/// `sops-lattice` ([`sops_lattice::ring`]); this is eight vector additions,
/// not eight rotations.
#[inline]
#[must_use]
pub fn ring(from: Node, dir: Direction) -> [Node; 8] {
    let offsets = ring_offsets(dir);
    core::array::from_fn(|k| from + offsets[k])
}

/// Occupancy of the combined neighborhood ring in a configuration.
#[must_use]
pub fn ring_occupancy(config: &Configuration, from: Node, dir: Direction) -> [bool; 8] {
    let ring = ring(from, dir);
    let mut occ = [false; 8];
    for (o, node) in occ.iter_mut().zip(ring) {
        *o = config.is_occupied(node);
    }
    occ
}

/// Property 4 on a ring-occupancy pattern: `|S| ∈ {1, 2}` and every particle
/// in `N(ℓ ∪ ℓ′)` is connected to **exactly one** particle of `S` by a path
/// through `N(ℓ ∪ ℓ′)`.
#[must_use]
pub fn property4(occ: [bool; 8]) -> bool {
    let s_count = usize::from(occ[S_POSITIONS[0]]) + usize::from(occ[S_POSITIONS[1]]);
    if s_count == 0 {
        return false;
    }
    // Occupied positions decompose into maximal runs of consecutive ring
    // indices; each run must contain exactly one occupied S position.
    for component in occupied_components(occ) {
        let s_in_component = component
            .iter()
            .filter(|&&i| S_POSITIONS.contains(&i) && occ[i])
            .count();
        if s_in_component != 1 {
            return false;
        }
    }
    true
}

/// Property 5 on a ring-occupancy pattern: `|S| = 0`, and both
/// `N(ℓ) ∖ {ℓ′}` and `N(ℓ′) ∖ {ℓ}` are nonempty and connected.
///
/// With the common neighbors unoccupied, `N(ℓ) ∖ {ℓ′}` is the occupied
/// subset of ring positions `{2, 3, 4}` and `N(ℓ′) ∖ {ℓ}` of `{6, 7, 0}`;
/// "connected" means the occupied positions form one consecutive run.
#[must_use]
pub fn property5(occ: [bool; 8]) -> bool {
    if occ[S_POSITIONS[0]] || occ[S_POSITIONS[1]] {
        return false;
    }
    side_nonempty_and_connected(occ[2], occ[3], occ[4])
        && side_nonempty_and_connected(occ[6], occ[7], occ[0])
}

fn side_nonempty_and_connected(a: bool, b: bool, c: bool) -> bool {
    match (a, b, c) {
        (false, false, false) => false, // empty
        (true, false, true) => false,   // disconnected
        _ => true,
    }
}

/// Whether a particle at `from` may move to the adjacent unoccupied node in
/// direction `dir`: Property 4 or Property 5 holds.
///
/// This is condition (ii) of Step 6 in Algorithm 1; the caller separately
/// enforces condition (i), `|N(ℓ)| ≠ 5`. Evaluated through
/// [`MOVEMENT_ALLOWED`], so the check is one gather plus one table load —
/// no allocation, no component scan.
#[must_use]
pub fn movement_allowed(config: &Configuration, from: Node, dir: Direction) -> bool {
    let mut bits = 0u8;
    for (k, &off) in ring_offsets(dir).iter().enumerate() {
        bits |= u8::from(config.is_occupied(from + off)) << k;
    }
    MOVEMENT_ALLOWED[bits as usize]
}

/// Packs a ring-occupancy pattern into the bit layout [`MOVEMENT_ALLOWED`]
/// is indexed by: bit `k` set iff ring position `k` is occupied.
#[inline]
#[must_use]
pub fn pack_ring(occ: [bool; 8]) -> u8 {
    let mut bits = 0u8;
    for (k, &o) in occ.iter().enumerate() {
        bits |= u8::from(o) << k;
    }
    bits
}

/// Property 4 on a packed ring pattern, evaluable at compile time.
///
/// Occupied positions decompose into maximal cyclic runs; each run must
/// contain exactly one occupied S position (and at least one S position must
/// be occupied). Equality with [`property4`] over all 256 patterns is proven
/// by the exhaustive oracle tests below.
const fn property4_bits(occ: u8) -> bool {
    if occ & (1 << S_POSITIONS[0]) == 0 && occ & (1 << S_POSITIONS[1]) == 0 {
        return false;
    }
    if occ == 0xFF {
        // A single run containing both common neighbors.
        return false;
    }
    // Start scanning just after an unoccupied position so runs do not wrap;
    // every run is then flushed inside the loop (the scan ends back at the
    // unoccupied start position).
    let mut start = 0;
    while (occ >> start) & 1 != 0 {
        start += 1;
    }
    let mut s_in_run = 0u8;
    let mut in_run = false;
    let mut k = 1;
    while k <= 8 {
        let i = (start + k) % 8;
        if (occ >> i) & 1 != 0 {
            in_run = true;
            if i == S_POSITIONS[0] || i == S_POSITIONS[1] {
                s_in_run += 1;
            }
        } else {
            if in_run && s_in_run != 1 {
                return false;
            }
            in_run = false;
            s_in_run = 0;
        }
        k += 1;
    }
    true
}

/// Property 5 on a packed ring pattern, evaluable at compile time.
const fn property5_bits(occ: u8) -> bool {
    if occ & (1 << S_POSITIONS[0]) != 0 || occ & (1 << S_POSITIONS[1]) != 0 {
        return false;
    }
    // Each side is a 3-node path; "nonempty and connected" excludes the
    // empty pattern and the two-endpoints-only pattern, which simplifies to:
    // the middle is occupied, or exactly one endpoint is.
    const fn side_ok(a: bool, b: bool, c: bool) -> bool {
        b || (a ^ c)
    }
    side_ok(
        occ & (1 << 2) != 0,
        occ & (1 << 3) != 0,
        occ & (1 << 4) != 0,
    ) && side_ok(occ & (1 << 6) != 0, occ & (1 << 7) != 0, occ & 1 != 0)
}

const fn build_movement_lut() -> [bool; 256] {
    let mut lut = [false; 256];
    let mut bits = 0usize;
    while bits < 256 {
        lut[bits] = property4_bits(bits as u8) || property5_bits(bits as u8);
        bits += 1;
    }
    lut
}

/// `MOVEMENT_ALLOWED[bits]` ⇔ `property4(occ) || property5(occ)` where
/// `bits = pack_ring(occ)` — condition (ii) of Algorithm 1 as a single
/// 256-entry compile-time table.
///
/// This is the proposal kernel's hot-path form of the movement conditions:
/// the run-decomposition of [`property4`] (which allocates per call) runs
/// once per pattern inside a `const fn` instead of once per proposal. The
/// exhaustive 256-pattern tests pin the table to the predicate pair.
pub static MOVEMENT_ALLOWED: [bool; 256] = build_movement_lut();

const fn pack_movement_lut() -> [u64; 4] {
    let lut = build_movement_lut();
    let mut bits = [0u64; 4];
    let mut i = 0;
    while i < 256 {
        if lut[i] {
            bits[i >> 6] |= 1u64 << (i & 63);
        }
        i += 1;
    }
    bits
}

/// [`MOVEMENT_ALLOWED`] packed to one bit per pattern: bit `occ & 63` of
/// word `occ >> 6`. The whole table is 32 bytes — half a cache line — so the
/// batched kernel's verdict pass touches one resident line instead of
/// scattering loads across the 256-byte `bool` table.
pub static MOVEMENT_ALLOWED_BITS: [u64; 4] = pack_movement_lut();

/// `MOVEMENT_ALLOWED[occ]` read from the packed bitset.
#[inline]
#[must_use]
pub fn movement_allowed_packed(occ: u8) -> bool {
    (MOVEMENT_ALLOWED_BITS[(occ >> 6) as usize] >> (occ & 63)) & 1 != 0
}

/// Maximal runs of consecutive occupied ring positions (cyclically).
fn occupied_components(occ: [bool; 8]) -> Vec<Vec<usize>> {
    let occupied_count = occ.iter().filter(|&&b| b).count();
    if occupied_count == 0 {
        return Vec::new();
    }
    if occupied_count == 8 {
        return vec![(0..8).collect()];
    }
    // Start scanning just after an unoccupied position so runs do not wrap.
    let start = (0..8)
        .find(|&i| !occ[i])
        .expect("some position is unoccupied");
    let mut components = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    for k in 1..=8 {
        let i = (start + k) % 8;
        if occ[i] {
            current.push(i);
        } else if !current.is_empty() {
            components.push(core::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        components.push(current);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Color;
    use sops_lattice::DIRECTIONS;

    #[test]
    fn packed_bitset_matches_bool_table_on_all_patterns() {
        for occ in 0..=255u8 {
            assert_eq!(
                movement_allowed_packed(occ),
                MOVEMENT_ALLOWED[occ as usize],
                "pattern {occ:#010b}"
            );
        }
    }

    /// Literal reference implementation of Property 4: build the induced
    /// graph on occupied ring nodes (adjacency = cyclic neighbors) and check
    /// each occupied node reaches exactly one occupied S node.
    fn property4_reference(occ: [bool; 8]) -> bool {
        let s: Vec<usize> = S_POSITIONS.iter().copied().filter(|&i| occ[i]).collect();
        if s.is_empty() {
            return false;
        }
        for v in 0..8 {
            if !occ[v] {
                continue;
            }
            // BFS over occupied ring positions.
            let mut seen = [false; 8];
            seen[v] = true;
            let mut stack = vec![v];
            while let Some(u) = stack.pop() {
                for w in [(u + 1) % 8, (u + 7) % 8] {
                    if occ[w] && !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            let reachable_s = s.iter().filter(|&&i| seen[i]).count();
            if reachable_s != 1 {
                return false;
            }
        }
        true
    }

    /// Literal reference implementation of Property 5.
    fn property5_reference(occ: [bool; 8]) -> bool {
        if occ[1] || occ[5] {
            return false;
        }
        // N(ℓ)\{ℓ'} = occupied among {1,2,3,4,5}; with 1 and 5 empty: {2,3,4}.
        let check_side = |positions: [usize; 3]| -> bool {
            let occupied: Vec<usize> = positions.iter().copied().filter(|&i| occ[i]).collect();
            if occupied.is_empty() {
                return false;
            }
            // Connected within the ring path positions[0]-positions[1]-positions[2].
            if occupied.len() == 2 {
                // Must be adjacent in the path order.
                let idx: Vec<usize> = occupied
                    .iter()
                    .map(|&p| positions.iter().position(|&q| q == p).unwrap())
                    .collect();
                (idx[0] as i32 - idx[1] as i32).abs() == 1
            } else {
                true // 1 or 3 occupied on a path of 3 is always connected
            }
        };
        check_side([2, 3, 4]) && check_side([6, 7, 0])
    }

    #[test]
    fn property4_matches_reference_on_all_256_patterns() {
        for bits in 0u16..256 {
            let occ = core::array::from_fn(|i| bits & (1 << i) != 0);
            assert_eq!(
                property4(occ),
                property4_reference(occ),
                "pattern {bits:#010b}"
            );
        }
    }

    #[test]
    fn property5_matches_reference_on_all_256_patterns() {
        for bits in 0u16..256 {
            let occ = core::array::from_fn(|i| bits & (1 << i) != 0);
            assert_eq!(
                property5(occ),
                property5_reference(occ),
                "pattern {bits:#010b}"
            );
        }
    }

    #[test]
    fn ring_nodes_form_a_chordless_8_cycle() {
        for d in DIRECTIONS {
            let from = Node::new(3, -2);
            let r = ring(from, d);
            let to = from.neighbor(d);
            for (i, node) in r.iter().enumerate() {
                // Consecutive ring nodes adjacent; skipping one is not.
                assert!(node.is_adjacent(r[(i + 1) % 8]), "dir {d} at {i}");
                assert!(!node.is_adjacent(r[(i + 2) % 8]), "chord at {i}, dir {d}");
                // Ring excludes the pair.
                assert_ne!(*node, from);
                assert_ne!(*node, to);
            }
            // S positions are adjacent to both ℓ and ℓ'.
            for &s in &S_POSITIONS {
                assert!(r[s].is_adjacent(from) && r[s].is_adjacent(to));
            }
            // Non-S positions are adjacent to exactly one of the pair.
            for (i, node) in r.iter().enumerate() {
                if !S_POSITIONS.contains(&i) {
                    assert!(node.is_adjacent(from) ^ node.is_adjacent(to), "pos {i}");
                }
            }
        }
    }

    #[test]
    fn isolated_pair_satisfies_neither_property() {
        // A 2-particle configuration moving one particle away from the other:
        // the ring is empty, so no property holds (the move would disconnect).
        let config =
            Configuration::new([(Node::new(0, 0), Color::C1), (Node::new(1, 0), Color::C1)])
                .unwrap();
        // Particle at (0,0) moving W to (-1,0): ring around ((0,0),W) contains
        // (1,0)? (1,0) is adjacent to (0,0) but not to (-1,0): ring position
        // on the ℓ side. The single S... just check the official API:
        assert!(!movement_allowed(&config, Node::new(0, 0), Direction::W));
        // Sliding around the partner is allowed: move NE keeps contact via S.
        assert!(movement_allowed(&config, Node::new(0, 0), Direction::NE));
    }

    #[test]
    fn movement_allowed_uses_configuration_occupancy() {
        // Triangle with an extra tail; moving the tail tip is fine, moving a
        // cut vertex is not.
        let config = Configuration::new([
            (Node::new(0, 0), Color::C1),
            (Node::new(1, 0), Color::C1),
            (Node::new(0, 1), Color::C1),
            (Node::new(-1, 0), Color::C1), // tail attached to (0,0)
        ])
        .unwrap();
        // Tail tip can slide to (-1, 1) (Property 4 via common neighbor (0,0)... )
        assert!(movement_allowed(&config, Node::new(-1, 0), Direction::NE));
    }

    #[test]
    fn movement_lut_equals_predicates_on_all_256_patterns() {
        // The oracle: the LUT must agree with the run-decomposition
        // predicates (themselves pinned to the literal BFS references above)
        // on every possible ring pattern. Together with those tests this
        // proves MOVEMENT_ALLOWED ≡ property4 ∨ property5 exhaustively.
        for bits in 0u16..256 {
            let occ = core::array::from_fn(|i| bits & (1 << i) != 0);
            assert_eq!(pack_ring(occ), bits as u8);
            assert_eq!(
                MOVEMENT_ALLOWED[bits as usize],
                property4(occ) || property5(occ),
                "pattern {bits:#010b}"
            );
        }
    }

    #[test]
    fn movement_allowed_agrees_with_unfused_ring_scan() {
        // The LUT-backed movement_allowed must match re-deriving the ring
        // occupancy and evaluating the predicates directly, on real
        // configurations (not just abstract patterns).
        let mut rng_state = 0x2545_f491_4f6c_dd1d_u64;
        let mut nodes = vec![Node::new(0, 0)];
        for _ in 0..60 {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            let base = nodes[(rng_state >> 8) as usize % nodes.len()];
            let n = base.neighbor(DIRECTIONS[(rng_state % 6) as usize]);
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
        let config = Configuration::new(nodes.iter().map(|&n| (n, Color::C1))).unwrap();
        for &n in &nodes {
            for d in DIRECTIONS {
                if config.is_occupied(n.neighbor(d)) {
                    continue;
                }
                let occ = ring_occupancy(&config, n, d);
                assert_eq!(
                    movement_allowed(&config, n, d),
                    property4(occ) || property5(occ),
                    "at {n} dir {d}"
                );
            }
        }
    }

    #[test]
    fn property4_blocks_two_sided_contact() {
        // Both S occupied but in separate components each with its own S:
        // occ[1] and occ[5] only → components {1}, {5}: each contains exactly
        // one S → allowed (this is the classic "tunnel" move).
        let mut occ = [false; 8];
        occ[1] = true;
        occ[5] = true;
        assert!(property4(occ));
        // A run connecting both S positions (1..=5): one component with two
        // S particles → forbidden (would create a hole or disconnect).
        let occ = core::array::from_fn(|i| (1..=5).contains(&i));
        assert!(!property4(occ));
    }
}
