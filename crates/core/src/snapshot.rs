//! Checkpoint integration: wires [`Configuration`] into the
//! crash-tolerant runner in `sops-chains`.
//!
//! [`sops_chains::StateCodec`] serializes the particle list in
//! particle-index order — the derived counters (`e(σ)`, `h(σ)`) are
//! recomputed on decode by [`Configuration::new`], so a snapshot can never
//! smuggle inconsistent bookkeeping back in. [`sops_chains::Auditable`]
//! delegates to [`Configuration::audit`], giving the checkpoint layer its
//! refuse-to-persist-corrupt-state guarantee. [`sops_chains::Repairable`]
//! delegates to [`Configuration::repair`], letting the recovery ladder fix
//! counter-cache corruption in place instead of killing the run.

use sops_chains::{Auditable, Repairable, StateCodec};
use sops_lattice::Node;

use crate::{Color, Configuration};

impl StateCodec for Configuration {
    fn encode_state(&self) -> Vec<u8> {
        // Layout: u32 particle count, then (i32 x, i32 y, u8 color) per
        // particle, little-endian, in particle-index order — the order
        // matters because the chain addresses particles by index.
        let mut out = Vec::with_capacity(4 + self.len() * 9);
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for (node, color) in self.particles() {
            out.extend_from_slice(&node.x.to_le_bytes());
            out.extend_from_slice(&node.y.to_le_bytes());
            out.push(color.index());
        }
        out
    }

    fn decode_state(bytes: &[u8]) -> Result<Self, String> {
        let n = u32::from_le_bytes(
            bytes
                .get(..4)
                .ok_or("truncated header")?
                .try_into()
                .expect("4-byte slice"),
        ) as usize;
        let body = &bytes[4..];
        if body.len() != n * 9 {
            return Err(format!(
                "expected {} particle bytes for n = {n}, got {}",
                n * 9,
                body.len()
            ));
        }
        let particles = body.chunks_exact(9).map(|chunk| {
            let x = i32::from_le_bytes(chunk[..4].try_into().expect("4-byte slice"));
            let y = i32::from_le_bytes(chunk[4..8].try_into().expect("4-byte slice"));
            (Node::new(x, y), Color::new(chunk[8]))
        });
        Configuration::new(particles).map_err(|e| e.to_string())
    }
}

impl Auditable for Configuration {
    fn audit_violations(&self) -> Vec<String> {
        self.audit().violation_messages()
    }
}

impl Repairable for Configuration {
    fn repair_state(&mut self) -> Result<Vec<String>, Vec<String>> {
        let report = self.audit();
        if report.is_consistent() {
            return Ok(Vec::new());
        }
        let outcome = self.repair(&report);
        if outcome.fully_repaired() {
            Ok(outcome.repaired)
        } else {
            Err(outcome.unrepaired.iter().map(ToString::to_string).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::construct;

    #[test]
    fn codec_round_trips_exactly() {
        let mut rng = StdRng::seed_from_u64(7);
        let nodes = construct::random_blob(40, &mut rng);
        let config = Configuration::new(construct::bicolor_random(nodes, 17, &mut rng)).unwrap();
        let back = Configuration::decode_state(&config.encode_state()).unwrap();
        // Identity of particles (index → node, color) is preserved, not
        // just the canonical shape.
        assert_eq!(back.len(), config.len());
        for i in 0..config.len() {
            assert_eq!(back.position_of(i), config.position_of(i));
            assert_eq!(back.color_of(i), config.color_of(i));
        }
        assert_eq!(back.edge_count(), config.edge_count());
        assert_eq!(back.hetero_edge_count(), config.hetero_edge_count());
    }

    #[test]
    fn decode_rejects_malformed_bytes_without_panicking() {
        assert!(Configuration::decode_state(&[]).is_err());
        assert!(Configuration::decode_state(&[1, 0]).is_err());
        // Count says 2 particles, body holds 1.
        let mut bytes = 2u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 9]);
        assert!(Configuration::decode_state(&bytes).is_err());
        // Duplicate node: structurally valid bytes, semantically invalid.
        let mut bytes = 2u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 9]);
        bytes.extend_from_slice(&[0; 9]);
        let err = Configuration::decode_state(&bytes).unwrap_err();
        assert!(err.contains("same node"), "{err}");
    }

    #[test]
    fn audit_hook_reports_clean_state_as_empty() {
        let config = construct::hexagonal_bicolored(20, 10).unwrap();
        assert!(config.audit_violations().is_empty());
    }
}
