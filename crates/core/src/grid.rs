//! Dense occupancy/color raster backing the proposal hot path.
//!
//! The chain's inner loop is dominated by *"what, if anything, occupies
//! node `ℓ`?"* probes: one per activation for the hold outcomes, eight per
//! [`crate::Configuration::ring_gather`]. Against the open-addressing
//! [`sops_lattice::NodeMap`] each probe is a hash, a masked index, and a
//! tag-plus-key compare with a data-dependent branch; against this raster
//! it is two subtractions, two unsigned range checks, and a byte load from
//! a few-KiB array that lives in L1 for realistic system sizes.
//!
//! The raster is a pure cache of the occupancy map: cell `0` means
//! unoccupied, cell `c > 0` means a particle of color index `c − 1`. It
//! covers the configuration's bounding box plus a [`MARGIN`]-cell border,
//! so a drifting configuration only forces a rebuild after `MARGIN` net
//! outward steps; a configuration too spread out to rasterize under
//! [`MAX_CELLS`] simply runs without a grid (every read path keeps its
//! map-probing fallback, and [`crate::Configuration::audit`] cross-checks
//! the raster against the map whenever one is present).

use sops_lattice::{ring_offsets, Direction, Node, RING_OFFSETS};

use crate::Color;

/// Hard cap on raster cells (4 MiB of `u8`): beyond this the cache costs
/// more in memory traffic and clone time than its probes save.
const MAX_CELLS: u64 = 1 << 22;

/// Unoccupied border kept around the bounding box so boundary moves stay
/// in-raster; a rebuild is needed only every `MARGIN` net outward steps.
const MARGIN: i64 = 32;

/// Ceiling for the adaptive margin (see [`ColorGrid::rebuild_grown`]): a
/// drifting configuration doubles its margin on every outgrow-rebuild, so
/// rebuild count grows logarithmically in drift distance, but the border
/// never exceeds this many cells per side (a 2·512-cell border alone stays
/// comfortably under [`MAX_CELLS`] for compact systems).
const MAX_GROWN_MARGIN: i64 = 512;

/// The dense raster. See the module docs for the cell encoding.
#[derive(Clone, Debug)]
pub(crate) struct ColorGrid {
    min_x: i32,
    min_y: i32,
    width: u32,
    height: u32,
    /// Border width this raster was built with; rebuilds after an outgrow
    /// double it (up to [`MAX_GROWN_MARGIN`]) so oscillation across the
    /// bounding-box edge cannot thrash rebuilds.
    margin: i64,
    cells: Vec<u8>,
}

/// The cell encoding of an occupying color.
#[inline]
pub(crate) fn encode(color: Color) -> u8 {
    // Index u8::MAX (unencodable: code would wrap to "empty") is rejected
    // at build time, so the increment cannot overflow here.
    color.index() + 1
}

/// The color encoded by a non-zero cell. For cell `0` this returns
/// `Color::C1`, matching the placeholder the map-probing paths leave in
/// never-read color lanes — callers must gate on occupancy, not color.
#[inline]
pub(crate) fn decode(code: u8) -> Color {
    Color::new(code.saturating_sub(1))
}

impl ColorGrid {
    /// Rasterizes `particles`, or returns `None` when the system cannot be
    /// cached: an empty list, a color index of `u8::MAX` (unencodable), a
    /// bounding box beyond [`MAX_CELLS`], or margins that would leave
    /// `i32` coordinate range.
    pub(crate) fn build(particles: &[(Node, Color)]) -> Option<Self> {
        Self::build_with(particles, MARGIN, None)
    }

    /// [`ColorGrid::build`] with an explicit margin and an optional prior
    /// raster extent (inclusive `(min_x, min_y, max_x, max_y)`) that the
    /// new raster must keep covering. The union is the hysteresis half of
    /// the rebuild policy: a raster never shrinks on rebuild, so a
    /// configuration oscillating across its old bounding-box edge cannot
    /// re-trigger the rebuild it just paid for.
    fn build_with(
        particles: &[(Node, Color)],
        margin: i64,
        keep_covering: Option<(i64, i64, i64, i64)>,
    ) -> Option<Self> {
        let (&(first, _), rest) = particles.split_first()?;
        let mut min_x = i64::from(first.x);
        let mut max_x = min_x;
        let mut min_y = i64::from(first.y);
        let mut max_y = min_y;
        for &(node, color) in particles {
            if color.index() == u8::MAX {
                return None;
            }
            min_x = min_x.min(i64::from(node.x));
            max_x = max_x.max(i64::from(node.x));
            min_y = min_y.min(i64::from(node.y));
            max_y = max_y.max(i64::from(node.y));
        }
        let _ = rest;
        let mut min_x = min_x - margin;
        let mut min_y = min_y - margin;
        let mut max_x = max_x + margin;
        let mut max_y = max_y + margin;
        if let Some((kx0, ky0, kx1, ky1)) = keep_covering {
            min_x = min_x.min(kx0);
            min_y = min_y.min(ky0);
            max_x = max_x.max(kx1);
            max_y = max_y.max(ky1);
        }
        let width = max_x + 1 - min_x;
        let height = max_y + 1 - min_y;
        if width as u64 * height as u64 > MAX_CELLS {
            return None;
        }
        if min_x < i64::from(i32::MIN)
            || min_y < i64::from(i32::MIN)
            || max_x > i64::from(i32::MAX)
            || max_y > i64::from(i32::MAX)
        {
            return None;
        }
        let mut grid = ColorGrid {
            min_x: min_x as i32,
            min_y: min_y as i32,
            width: width as u32,
            height: height as u32,
            margin,
            cells: vec![0; (width * height) as usize],
        };
        for &(node, color) in particles {
            let ok = grid.set(node, encode(color));
            debug_assert!(ok, "bounding-box cell {node} out of its own raster");
        }
        Some(grid)
    }

    /// Rebuilds after a particle stepped outside this raster, applying the
    /// anti-thrash policy: double the margin (capped at
    /// [`MAX_GROWN_MARGIN`]) and keep covering the old raster's extent. If
    /// the grown raster would exceed [`MAX_CELLS`], the margin is halved
    /// back down (never below [`MARGIN`]); as a last resort the old extent
    /// is dropped; and if even a fresh default-margin raster cannot fit,
    /// the system runs without a grid, exactly as before.
    pub(crate) fn rebuild_grown(&self, particles: &[(Node, Color)]) -> Option<Self> {
        let old_extent = (
            i64::from(self.min_x),
            i64::from(self.min_y),
            i64::from(self.min_x) + i64::from(self.width) - 1,
            i64::from(self.min_y) + i64::from(self.height) - 1,
        );
        let mut margin = self
            .margin
            .saturating_mul(2)
            .clamp(MARGIN, MAX_GROWN_MARGIN);
        loop {
            if let Some(grid) = Self::build_with(particles, margin, Some(old_extent)) {
                return Some(grid);
            }
            if margin > MARGIN {
                margin = (margin / 2).max(MARGIN);
            } else {
                return Self::build_with(particles, MARGIN, None);
            }
        }
    }

    /// The cell index of `node`, when it lies inside the raster.
    ///
    /// The `wrapping_sub` + unsigned compare folds both range checks into
    /// one per axis: any `i32` pair's true difference fits `u32` exactly,
    /// and negative differences wrap far above any admissible width.
    #[inline]
    fn index(&self, node: Node) -> Option<usize> {
        let dx = node.x.wrapping_sub(self.min_x) as u32;
        let dy = node.y.wrapping_sub(self.min_y) as u32;
        if dx < self.width && dy < self.height {
            Some(dy as usize * self.width as usize + dx as usize)
        } else {
            None
        }
    }

    /// The cell at `node`: `0` for unoccupied *or out-of-raster* nodes
    /// (everything outside the raster is unoccupied by construction).
    #[inline]
    pub(crate) fn code(&self, node: Node) -> u8 {
        match self.index(node) {
            Some(i) => self.cells[i],
            None => 0,
        }
    }

    /// Writes `code` at `node`; `false` means the node lies outside the
    /// raster and the caller must rebuild.
    #[inline]
    pub(crate) fn set(&mut self, node: Node, code: u8) -> bool {
        match self.index(node) {
            Some(i) => {
                self.cells[i] = code;
                true
            }
            None => false,
        }
    }

    /// Clears the cell at `node` (a no-op outside the raster, where every
    /// node is already unoccupied).
    #[inline]
    pub(crate) fn clear(&mut self, node: Node) {
        if let Some(i) = self.index(node) {
            self.cells[i] = 0;
        }
    }

    /// Number of occupied cells — the audit's cheap "no stale particle
    /// left behind" cross-check against the occupancy map's length.
    pub(crate) fn occupied_cells(&self) -> usize {
        self.cells.iter().filter(|&&c| c != 0).count()
    }

    /// Smallest in-raster x coordinate.
    #[inline]
    pub(crate) fn min_x(&self) -> i32 {
        self.min_x
    }

    /// Smallest in-raster y coordinate.
    #[inline]
    pub(crate) fn min_y(&self) -> i32 {
        self.min_y
    }

    /// Raster width in cells (row stride of [`ColorGrid::cells_mut`]).
    #[inline]
    pub(crate) fn width(&self) -> u32 {
        self.width
    }

    /// Raster height in cells (number of rows).
    #[inline]
    pub(crate) fn height(&self) -> u32 {
        self.height
    }

    /// Border width this raster was built with.
    #[cfg(test)]
    pub(crate) fn margin(&self) -> i64 {
        self.margin
    }

    /// The raw y-major cell array. Row `r` (lattice row `min_y + r`)
    /// occupies `cells[r * width .. (r + 1) * width]`; rows being
    /// contiguous is what lets the sharded engine hand disjoint row bands
    /// to worker threads via `split_at_mut`.
    #[inline]
    pub(crate) fn cells_mut(&mut self) -> &mut [u8] {
        &mut self.cells
    }

    /// The eight ring cell codes of the pair `{from, from + dir}`, in ring
    /// order — the raster-native gather behind
    /// [`crate::Configuration::ring_gather`].
    ///
    /// Dispatches between two bit-for-bit identical implementations:
    /// per-node probes (the default) and the row-window gather behind the
    /// off-by-default `ring-windows` feature (see
    /// [`ColorGrid::ring_codes_windowed`] for why it lost the benchmark).
    /// Both are always compiled and cross-tested.
    #[inline]
    pub(crate) fn ring_codes(&self, from: Node, dir: Direction) -> [u8; 8] {
        if cfg!(feature = "ring-windows") {
            self.ring_codes_windowed(from, dir)
        } else {
            self.ring_codes_probed(from, dir)
        }
    }

    /// [`ColorGrid::ring_codes`] as eight independent [`ColorGrid::code`]
    /// probes (each a multiply, two range checks, and a byte load). The
    /// measured-faster default: the probes hit 3–4 adjacent raster rows
    /// already in cache, and each is branch-predictable straight-line
    /// code.
    #[inline]
    pub(crate) fn ring_codes_probed(&self, from: Node, dir: Direction) -> [u8; 8] {
        let offsets = ring_offsets(dir);
        core::array::from_fn(|k| self.code(from + offsets[k]))
    }

    /// [`ColorGrid::ring_codes`] as 3–4 short row windows: one 4-byte load
    /// per raster row the ring touches, with each ring lane extracted by a
    /// constant shift from its row's window (see [`RING_ROW_WINDOWS`]).
    /// Rings too close to the raster edge for whole-window loads fall back
    /// to per-node probes, so the result is bit-for-bit identical to the
    /// probe path everywhere.
    ///
    /// Kept behind the off-by-default `ring-windows` feature: paired
    /// benchmarks (see EXPERIMENTS.md) measured it *slower* than the probe
    /// path on the bench host — the per-row bounds checks, window
    /// assembly, and lane-extraction table reads cost more than the five
    /// byte probes they replace. Retained compiled and cross-tested in
    /// case wider-vector hosts tip the balance.
    #[inline]
    pub(crate) fn ring_codes_windowed(&self, from: Node, dir: Direction) -> [u8; 8] {
        let rw = &RING_ROW_WINDOWS[dir.index()];
        let mut windows = [0u32; 4];
        let stride = self.width as usize;
        for (r, window) in windows.iter_mut().enumerate().take(rw.nrows as usize) {
            let dy = from.y.wrapping_add(rw.row_dy[r]).wrapping_sub(self.min_y) as u32;
            let dx = from
                .x
                .wrapping_add(rw.row_min_dx[r])
                .wrapping_sub(self.min_x) as u32;
            if dy < self.height && dx < self.width && self.width - dx >= WINDOW_BYTES {
                let base = dy as usize * stride + dx as usize;
                let win: [u8; WINDOW_BYTES as usize] = self.cells
                    [base..base + WINDOW_BYTES as usize]
                    .try_into()
                    .expect("window length is fixed");
                *window = u32::from_le_bytes(win);
            } else {
                // Raster-edge ring: per-node probes handle out-of-raster
                // nodes (unoccupied by construction) exactly.
                return self.ring_codes_probed(from, dir);
            }
        }
        core::array::from_fn(|k| (windows[rw.lane_row[k] as usize] >> rw.lane_shift[k]) as u8)
    }
}

/// Bytes loaded per ring row window. Every ring row spans at most 4
/// consecutive cells (asserted by the table builder), and the raster's
/// ≥ [`MARGIN`]-cell border means a whole window around any in-raster
/// particle is almost always in-raster too.
const WINDOW_BYTES: u32 = 4;

/// Row-window descriptor for one pair orientation: which raster rows the
/// ring touches, where each row's 4-byte load starts, and which (row,
/// shift) extracts each of the eight ring lanes.
struct RowWindows {
    nrows: u8,
    row_dy: [i32; 4],
    row_min_dx: [i32; 4],
    lane_row: [u8; 8],
    /// Bit shift of the lane's byte within its row window: `8 · (dx − row_min_dx)`.
    lane_shift: [u8; 8],
}

const fn build_row_windows() -> [RowWindows; 6] {
    let mut table = [const {
        RowWindows {
            nrows: 0,
            row_dy: [0; 4],
            row_min_dx: [0; 4],
            lane_row: [0; 8],
            lane_shift: [0; 8],
        }
    }; 6];
    let mut d = 0;
    while d < 6 {
        let ring = RING_OFFSETS[d];
        let mut rw = RowWindows {
            nrows: 0,
            row_dy: [0; 4],
            row_min_dx: [0; 4],
            lane_row: [0; 8],
            lane_shift: [0; 8],
        };
        let mut k = 0;
        while k < 8 {
            let node = ring[k];
            // Find or append the row for this dy.
            let mut r = 0;
            while r < rw.nrows as usize {
                if rw.row_dy[r] == node.y {
                    break;
                }
                r += 1;
            }
            if r == rw.nrows as usize {
                assert!(r < 4, "a ring spans at most 4 rows");
                rw.row_dy[r] = node.y;
                rw.row_min_dx[r] = node.x;
                rw.nrows += 1;
            } else if node.x < rw.row_min_dx[r] {
                rw.row_min_dx[r] = node.x;
            }
            k += 1;
        }
        k = 0;
        while k < 8 {
            let node = ring[k];
            let mut r = 0;
            while rw.row_dy[r] != node.y {
                r += 1;
            }
            let off = node.x - rw.row_min_dx[r];
            assert!(
                off >= 0 && (off as u32) < WINDOW_BYTES,
                "ring row wider than its window"
            );
            rw.lane_row[k] = r as u8;
            rw.lane_shift[k] = (off * 8) as u8;
            k += 1;
        }
        table[d] = rw;
        d += 1;
    }
    table
}

/// Per-direction ring row windows, indexed by `Direction::index()`.
static RING_ROW_WINDOWS: [RowWindows; 6] = build_row_windows();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_probes_and_mutation_roundtrip() {
        let particles = vec![
            (Node::new(0, 0), Color::C1),
            (Node::new(3, -2), Color::C2),
            (Node::new(-1, 4), Color::C3),
        ];
        let mut grid = ColorGrid::build(&particles).expect("small system rasterizes");
        for &(node, color) in &particles {
            assert_eq!(grid.code(node), encode(color));
            assert_eq!(decode(grid.code(node)), color);
        }
        assert_eq!(grid.code(Node::new(1, 1)), 0);
        // Far outside the raster: unoccupied, no panic.
        assert_eq!(grid.code(Node::new(1_000_000, -1_000_000)), 0);
        assert_eq!(grid.occupied_cells(), 3);

        grid.clear(Node::new(0, 0));
        assert!(grid.set(Node::new(1, 0), encode(Color::C1)));
        assert_eq!(grid.code(Node::new(0, 0)), 0);
        assert_eq!(grid.code(Node::new(1, 0)), encode(Color::C1));
        assert_eq!(grid.occupied_cells(), 3);

        // Within the margin: settable; far past it: rejected.
        assert!(grid.set(Node::new(3 + 10, 0), 1));
        assert!(!grid.set(Node::new(3 + 1000, 0), 1));
    }

    #[test]
    fn build_rejects_uncacheable_systems() {
        assert!(ColorGrid::build(&[]).is_none());
        // Unencodable color index.
        assert!(ColorGrid::build(&[(Node::new(0, 0), Color::new(u8::MAX))]).is_none());
        // Bounding box past the cell cap.
        let sparse = vec![
            (Node::new(0, 0), Color::C1),
            (Node::new(1 << 20, 1 << 20), Color::C2),
        ];
        assert!(ColorGrid::build(&sparse).is_none());
        // Margin would leave i32 range.
        let edge = vec![(Node::new(i32::MAX, 0), Color::C1)];
        assert!(ColorGrid::build(&edge).is_none());
        // Compact systems anywhere in range still rasterize.
        let shifted = vec![
            (Node::new(500_000_000, -500_000_000), Color::C1),
            (Node::new(500_000_001, -500_000_000), Color::C2),
        ];
        assert!(ColorGrid::build(&shifted).is_some());
    }

    #[test]
    fn margin_absorbs_drift_up_to_its_width() {
        let mut grid = ColorGrid::build(&[(Node::new(0, 0), Color::C1)]).unwrap();
        // All nodes within MARGIN of the box are in-raster.
        let m = MARGIN as i32;
        assert!(grid.set(Node::new(m, 0), 1));
        assert!(grid.set(Node::new(0, -m), 1));
        assert!(!grid.set(Node::new(m + 1, 0), 1));
    }

    #[test]
    fn rebuild_grown_doubles_margin_and_keeps_old_extent() {
        let grid = ColorGrid::build(&[(Node::new(0, 0), Color::C1)]).unwrap();
        assert_eq!(grid.margin(), MARGIN);
        let old_min_x = grid.min_x();
        // Particle drifted just past the border.
        let drifted = vec![(Node::new(MARGIN as i32 + 1, 0), Color::C1)];
        let mut grown = grid.rebuild_grown(&drifted).expect("still rasterizable");
        assert_eq!(grown.margin(), 2 * MARGIN);
        // Hysteresis: the new raster still covers the old one entirely.
        assert!(grown.min_x() <= old_min_x);
        assert!(grown.set(Node::new(0, -(MARGIN as i32)), 1));
        // And the grown margin extends past the new bounding box.
        assert!(grown.set(Node::new(MARGIN as i32 + 1 + 2 * MARGIN as i32, 0), 1));
        // Margin growth saturates at the cap.
        let mut g = grid;
        for _ in 0..20 {
            g = g.rebuild_grown(&drifted).unwrap();
        }
        assert_eq!(g.margin(), MAX_GROWN_MARGIN);
    }

    #[test]
    fn rebuild_grown_backs_off_when_grown_raster_would_not_fit() {
        // A wide strip whose raster stops fitting once the margin ladder
        // reaches 512 (4524 × 1026 cells > MAX_CELLS): the policy must
        // retreat to a smaller margin, not give up.
        let side = 3500i32;
        let wide: Vec<(Node, Color)> = (0..side)
            .flat_map(|x| (0..2).map(move |y| (Node::new(x, y), Color::C1)))
            .collect();
        let mut grid = ColorGrid::build(&wide).unwrap();
        for _ in 0..12 {
            match grid.rebuild_grown(&wide) {
                Some(g) => grid = g,
                None => panic!("policy must back off margin rather than drop the raster"),
            }
        }
        assert!(grid.width() as u64 * grid.height() as u64 <= MAX_CELLS);
    }

    #[test]
    fn ring_codes_match_per_node_probes_everywhere() {
        use sops_lattice::DIRECTIONS;
        // A raster with a dense random-ish pattern, probed at interior
        // nodes, near every edge, and fully outside: the row-window path,
        // the per-node probe path, and the dispatching `ring_codes` must
        // all agree bit-for-bit, regardless of which one the
        // `ring-windows` feature selects.
        let mut particles = Vec::new();
        for x in 0..9i32 {
            for y in 0..7i32 {
                if (x * 31 + y * 17) % 3 != 0 {
                    let color = if (x + y) % 2 == 0 {
                        Color::C1
                    } else {
                        Color::C2
                    };
                    particles.push((Node::new(x, y), color));
                }
            }
        }
        let grid = ColorGrid::build(&particles).expect("rasterizes");
        let m = MARGIN as i32;
        for y in -(m + 3)..(7 + m + 3) {
            for x in -(m + 3)..(9 + m + 3) {
                let from = Node::new(x, y);
                for dir in DIRECTIONS {
                    let expect: Vec<u8> = ring_offsets(dir)
                        .iter()
                        .map(|&off| grid.code(from + off))
                        .collect();
                    assert_eq!(
                        grid.ring_codes_windowed(from, dir).as_slice(),
                        expect,
                        "windowed at {from} dir {dir}"
                    );
                    assert_eq!(
                        grid.ring_codes_probed(from, dir).as_slice(),
                        expect,
                        "probed at {from} dir {dir}"
                    );
                    assert_eq!(
                        grid.ring_codes(from, dir).as_slice(),
                        expect,
                        "dispatch at {from} dir {dir}"
                    );
                }
            }
        }
    }
}
