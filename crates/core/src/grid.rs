//! Dense occupancy/color raster backing the proposal hot path.
//!
//! The chain's inner loop is dominated by *"what, if anything, occupies
//! node `ℓ`?"* probes: one per activation for the hold outcomes, eight per
//! [`crate::Configuration::ring_gather`]. Against the open-addressing
//! [`sops_lattice::NodeMap`] each probe is a hash, a masked index, and a
//! tag-plus-key compare with a data-dependent branch; against this raster
//! it is two subtractions, two unsigned range checks, and a byte load from
//! a few-KiB array that lives in L1 for realistic system sizes.
//!
//! The raster is a pure cache of the occupancy map: cell `0` means
//! unoccupied, cell `c > 0` means a particle of color index `c − 1`. It
//! covers the configuration's bounding box plus a [`MARGIN`]-cell border,
//! so a drifting configuration only forces a rebuild after `MARGIN` net
//! outward steps; a configuration too spread out to rasterize under
//! [`MAX_CELLS`] simply runs without a grid (every read path keeps its
//! map-probing fallback, and [`crate::Configuration::audit`] cross-checks
//! the raster against the map whenever one is present).

use sops_lattice::Node;

use crate::Color;

/// Hard cap on raster cells (4 MiB of `u8`): beyond this the cache costs
/// more in memory traffic and clone time than its probes save.
const MAX_CELLS: u64 = 1 << 22;

/// Unoccupied border kept around the bounding box so boundary moves stay
/// in-raster; a rebuild is needed only every `MARGIN` net outward steps.
const MARGIN: i64 = 32;

/// The dense raster. See the module docs for the cell encoding.
#[derive(Clone, Debug)]
pub(crate) struct ColorGrid {
    min_x: i32,
    min_y: i32,
    width: u32,
    height: u32,
    cells: Vec<u8>,
}

/// The cell encoding of an occupying color.
#[inline]
pub(crate) fn encode(color: Color) -> u8 {
    // Index u8::MAX (unencodable: code would wrap to "empty") is rejected
    // at build time, so the increment cannot overflow here.
    color.index() + 1
}

/// The color encoded by a non-zero cell. For cell `0` this returns
/// `Color::C1`, matching the placeholder the map-probing paths leave in
/// never-read color lanes — callers must gate on occupancy, not color.
#[inline]
pub(crate) fn decode(code: u8) -> Color {
    Color::new(code.saturating_sub(1))
}

impl ColorGrid {
    /// Rasterizes `particles`, or returns `None` when the system cannot be
    /// cached: an empty list, a color index of `u8::MAX` (unencodable), a
    /// bounding box beyond [`MAX_CELLS`], or margins that would leave
    /// `i32` coordinate range.
    pub(crate) fn build(particles: &[(Node, Color)]) -> Option<Self> {
        let (&(first, _), rest) = particles.split_first()?;
        let mut min_x = i64::from(first.x);
        let mut max_x = min_x;
        let mut min_y = i64::from(first.y);
        let mut max_y = min_y;
        for &(node, color) in particles {
            if color.index() == u8::MAX {
                return None;
            }
            min_x = min_x.min(i64::from(node.x));
            max_x = max_x.max(i64::from(node.x));
            min_y = min_y.min(i64::from(node.y));
            max_y = max_y.max(i64::from(node.y));
        }
        let _ = rest;
        let min_x = min_x - MARGIN;
        let min_y = min_y - MARGIN;
        let width = max_x + MARGIN + 1 - min_x;
        let height = max_y + MARGIN + 1 - min_y;
        if width as u64 * height as u64 > MAX_CELLS {
            return None;
        }
        if min_x < i64::from(i32::MIN)
            || min_y < i64::from(i32::MIN)
            || max_x + MARGIN > i64::from(i32::MAX)
            || max_y + MARGIN > i64::from(i32::MAX)
        {
            return None;
        }
        let mut grid = ColorGrid {
            min_x: min_x as i32,
            min_y: min_y as i32,
            width: width as u32,
            height: height as u32,
            cells: vec![0; (width * height) as usize],
        };
        for &(node, color) in particles {
            let ok = grid.set(node, encode(color));
            debug_assert!(ok, "bounding-box cell {node} out of its own raster");
        }
        Some(grid)
    }

    /// The cell index of `node`, when it lies inside the raster.
    ///
    /// The `wrapping_sub` + unsigned compare folds both range checks into
    /// one per axis: any `i32` pair's true difference fits `u32` exactly,
    /// and negative differences wrap far above any admissible width.
    #[inline]
    fn index(&self, node: Node) -> Option<usize> {
        let dx = node.x.wrapping_sub(self.min_x) as u32;
        let dy = node.y.wrapping_sub(self.min_y) as u32;
        if dx < self.width && dy < self.height {
            Some(dy as usize * self.width as usize + dx as usize)
        } else {
            None
        }
    }

    /// The cell at `node`: `0` for unoccupied *or out-of-raster* nodes
    /// (everything outside the raster is unoccupied by construction).
    #[inline]
    pub(crate) fn code(&self, node: Node) -> u8 {
        match self.index(node) {
            Some(i) => self.cells[i],
            None => 0,
        }
    }

    /// Writes `code` at `node`; `false` means the node lies outside the
    /// raster and the caller must rebuild.
    #[inline]
    pub(crate) fn set(&mut self, node: Node, code: u8) -> bool {
        match self.index(node) {
            Some(i) => {
                self.cells[i] = code;
                true
            }
            None => false,
        }
    }

    /// Clears the cell at `node` (a no-op outside the raster, where every
    /// node is already unoccupied).
    #[inline]
    pub(crate) fn clear(&mut self, node: Node) {
        if let Some(i) = self.index(node) {
            self.cells[i] = 0;
        }
    }

    /// Number of occupied cells — the audit's cheap "no stale particle
    /// left behind" cross-check against the occupancy map's length.
    pub(crate) fn occupied_cells(&self) -> usize {
        self.cells.iter().filter(|&&c| c != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_probes_and_mutation_roundtrip() {
        let particles = vec![
            (Node::new(0, 0), Color::C1),
            (Node::new(3, -2), Color::C2),
            (Node::new(-1, 4), Color::C3),
        ];
        let mut grid = ColorGrid::build(&particles).expect("small system rasterizes");
        for &(node, color) in &particles {
            assert_eq!(grid.code(node), encode(color));
            assert_eq!(decode(grid.code(node)), color);
        }
        assert_eq!(grid.code(Node::new(1, 1)), 0);
        // Far outside the raster: unoccupied, no panic.
        assert_eq!(grid.code(Node::new(1_000_000, -1_000_000)), 0);
        assert_eq!(grid.occupied_cells(), 3);

        grid.clear(Node::new(0, 0));
        assert!(grid.set(Node::new(1, 0), encode(Color::C1)));
        assert_eq!(grid.code(Node::new(0, 0)), 0);
        assert_eq!(grid.code(Node::new(1, 0)), encode(Color::C1));
        assert_eq!(grid.occupied_cells(), 3);

        // Within the margin: settable; far past it: rejected.
        assert!(grid.set(Node::new(3 + 10, 0), 1));
        assert!(!grid.set(Node::new(3 + 1000, 0), 1));
    }

    #[test]
    fn build_rejects_uncacheable_systems() {
        assert!(ColorGrid::build(&[]).is_none());
        // Unencodable color index.
        assert!(ColorGrid::build(&[(Node::new(0, 0), Color::new(u8::MAX))]).is_none());
        // Bounding box past the cell cap.
        let sparse = vec![
            (Node::new(0, 0), Color::C1),
            (Node::new(1 << 20, 1 << 20), Color::C2),
        ];
        assert!(ColorGrid::build(&sparse).is_none());
        // Margin would leave i32 range.
        let edge = vec![(Node::new(i32::MAX, 0), Color::C1)];
        assert!(ColorGrid::build(&edge).is_none());
        // Compact systems anywhere in range still rasterize.
        let shifted = vec![
            (Node::new(500_000_000, -500_000_000), Color::C1),
            (Node::new(500_000_001, -500_000_000), Color::C2),
        ];
        assert!(ColorGrid::build(&shifted).is_some());
    }

    #[test]
    fn margin_absorbs_drift_up_to_its_width() {
        let mut grid = ColorGrid::build(&[(Node::new(0, 0), Color::C1)]).unwrap();
        // All nodes within MARGIN of the box are in-raster.
        let m = MARGIN as i32;
        assert!(grid.set(Node::new(m, 0), 1));
        assert!(grid.set(Node::new(0, -m), 1));
        assert!(!grid.set(Node::new(m + 1, 0), 1));
    }
}
