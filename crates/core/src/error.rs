//! Error types.

use core::fmt;

use sops_lattice::Node;

/// Errors constructing or validating a particle-system configuration.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// Two particles were placed on the same lattice node.
    DuplicateNode(Node),
    /// A configuration must contain at least one particle.
    Empty,
    /// The configuration is not connected (required by the chain: a
    /// disconnected particle cannot communicate with the rest of the system).
    Disconnected,
    /// A bias parameter was not strictly positive.
    InvalidBias {
        /// The parameter name (`"lambda"` or `"gamma"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A requested color count exceeded the total particle count.
    BadColorCounts {
        /// Total particles requested.
        n: usize,
        /// Sum of the per-color counts.
        sum: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::DuplicateNode(n) => {
                write!(f, "two particles occupy the same node {n}")
            }
            ConfigError::Empty => write!(f, "configuration has no particles"),
            ConfigError::Disconnected => write!(f, "configuration is not connected"),
            ConfigError::InvalidBias { name, value } => {
                write!(
                    f,
                    "bias parameter {name} must be strictly positive, got {value}"
                )
            }
            ConfigError::BadColorCounts { n, sum } => {
                write!(
                    f,
                    "color counts sum to {sum} but {n} particles were requested"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = ConfigError::DuplicateNode(Node::new(1, 2));
        assert!(e.to_string().contains("(1, 2)"));
        assert!(ConfigError::Empty.to_string().contains("no particles"));
        let e = ConfigError::InvalidBias {
            name: "gamma",
            value: -1.0,
        };
        assert!(e.to_string().contains("gamma"));
        let e = ConfigError::BadColorCounts { n: 5, sum: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(ConfigError::Disconnected);
        assert!(e.to_string().contains("not connected"));
    }
}
