//! Error types.

use core::fmt;

use sops_lattice::Node;

/// Errors constructing or validating a particle-system configuration.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// Two particles were placed on the same lattice node.
    DuplicateNode(Node),
    /// A configuration must contain at least one particle.
    Empty,
    /// The configuration is not connected (required by the chain: a
    /// disconnected particle cannot communicate with the rest of the system).
    Disconnected,
    /// A bias parameter was not strictly positive.
    InvalidBias {
        /// The parameter name (`"lambda"` or `"gamma"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A requested color count exceeded the total particle count.
    BadColorCounts {
        /// Total particles requested.
        n: usize,
        /// Sum of the per-color counts.
        sum: usize,
    },
}

impl ConfigError {
    /// A stable machine-readable code for this error class, suitable for
    /// serialization into reports (the human-readable `Display` text may
    /// change; these codes may not).
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ConfigError::DuplicateNode(_) => "duplicate_node",
            ConfigError::Empty => "empty",
            ConfigError::Disconnected => "disconnected",
            ConfigError::InvalidBias { .. } => "invalid_bias",
            ConfigError::BadColorCounts { .. } => "bad_color_counts",
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::DuplicateNode(n) => {
                write!(f, "two particles occupy the same node {n}")
            }
            ConfigError::Empty => write!(f, "configuration has no particles"),
            ConfigError::Disconnected => write!(f, "configuration is not connected"),
            ConfigError::InvalidBias { name, value } => {
                write!(
                    f,
                    "bias parameter {name} must be strictly positive, got {value}"
                )
            }
            ConfigError::BadColorCounts { n, sum } => {
                write!(
                    f,
                    "color counts sum to {sum} but {n} particles were requested"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A chain transition was queried against a state that cannot support it —
/// e.g. an acceptance ratio for a move whose source node holds no particle.
///
/// These conditions indicate a logic error in the *caller* (or corrupted
/// state), but they are surfaced as typed errors rather than panics so
/// long-running experiment drivers can degrade gracefully: skip the
/// transition, audit the state, and continue or abort deliberately.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ChainStateError {
    /// A transition's source node holds no particle.
    UnoccupiedSource(Node),
    /// A swap's partner node holds no particle.
    UnoccupiedTarget(Node),
    /// Applying a transition's local delta to an incrementally-maintained
    /// counter would underflow or overflow — the tracked value cannot be
    /// right, since a consistent configuration always has room for any
    /// legal local change. Earlier code silently wrapped here, converting
    /// counter corruption into plausible-looking values the auditor could
    /// only catch much later.
    CounterCorruption {
        /// Which counter (`"edges"` or `"hetero"`).
        counter: &'static str,
        /// The corrupted tracked value the delta was applied to.
        tracked: u64,
        /// The local delta the transition computed.
        delta: i64,
    },
}

impl ChainStateError {
    /// A stable machine-readable code for this error class (see
    /// [`ConfigError::code`] for the stability contract).
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ChainStateError::UnoccupiedSource(_) => "unoccupied_source",
            ChainStateError::UnoccupiedTarget(_) => "unoccupied_target",
            ChainStateError::CounterCorruption { .. } => "counter_corruption",
        }
    }
}

impl fmt::Display for ChainStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainStateError::UnoccupiedSource(n) => {
                write!(f, "transition source {n} holds no particle")
            }
            ChainStateError::UnoccupiedTarget(n) => {
                write!(f, "swap target {n} holds no particle")
            }
            ChainStateError::CounterCorruption {
                counter,
                tracked,
                delta,
            } => write!(
                f,
                "{counter} counter corrupt: tracked value {tracked} cannot absorb delta {delta}"
            ),
        }
    }
}

impl std::error::Error for ChainStateError {}

/// One invariant violation found by [`crate::Configuration::audit`].
///
/// Each variant carries both the incrementally-tracked value and the value
/// recomputed from scratch, so a report pinpoints *which* bookkeeping
/// drifted, not merely that something did.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AuditViolation {
    /// The incrementally-maintained edge count `e(σ)` disagrees with a
    /// from-scratch recount.
    EdgeCountDrift {
        /// The incrementally-tracked value.
        tracked: u64,
        /// The value recomputed from scratch.
        recomputed: u64,
    },
    /// The incrementally-maintained heterogeneous-edge count `h(σ)`
    /// disagrees with a from-scratch recount.
    HeteroCountDrift {
        /// The incrementally-tracked value.
        tracked: u64,
        /// The value recomputed from scratch.
        recomputed: u64,
    },
    /// The occupancy map and the particle position/color tables disagree.
    OccupancyDesync {
        /// The node where the disagreement was found.
        node: Node,
        /// What disagreed (index mapping, color, or a missing entry).
        detail: String,
    },
    /// The configuration is disconnected. The chain preserves connectivity
    /// (Lemma 5), so a disconnected state mid-run means a corrupted
    /// transition.
    Disconnected,
    /// The perimeter identity `p(σ) = 3n − e(σ) − 3` disagrees with the
    /// independently computed boundary walk. Only checked for connected
    /// hole-free configurations, where the identity is exact.
    PerimeterMismatch {
        /// `3n − e(σ) − 3` from the tracked edge count.
        identity: u64,
        /// The boundary-walk length computed by contour traversal.
        walk: u64,
    },
    /// The *tracked* edge count is so large that the perimeter identity
    /// `p(σ) = 3n − e(σ) − 3` underflows — impossible for any real
    /// configuration (`e ≤ 3n − 3` always), so the counter is corrupt.
    /// Reported separately from [`AuditViolation::EdgeCountDrift`] because
    /// `Configuration::perimeter()` clamps this case to 0 and would
    /// otherwise mask it.
    PerimeterUnderflow {
        /// Number of particles `n`.
        particles: usize,
        /// The corrupt tracked edge count.
        tracked_edges: u64,
    },
}

impl AuditViolation {
    /// A stable machine-readable code for this violation class (see
    /// [`ConfigError::code`] for the stability contract).
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            AuditViolation::EdgeCountDrift { .. } => "edge_count_drift",
            AuditViolation::HeteroCountDrift { .. } => "hetero_count_drift",
            AuditViolation::OccupancyDesync { .. } => "occupancy_desync",
            AuditViolation::Disconnected => "disconnected",
            AuditViolation::PerimeterMismatch { .. } => "perimeter_mismatch",
            AuditViolation::PerimeterUnderflow { .. } => "perimeter_underflow",
        }
    }
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::EdgeCountDrift {
                tracked,
                recomputed,
            } => write!(
                f,
                "edge count drift: tracked {tracked}, recomputed {recomputed}"
            ),
            AuditViolation::HeteroCountDrift {
                tracked,
                recomputed,
            } => write!(
                f,
                "heterogeneous edge count drift: tracked {tracked}, recomputed {recomputed}"
            ),
            AuditViolation::OccupancyDesync { node, detail } => {
                write!(f, "occupancy desync at {node}: {detail}")
            }
            AuditViolation::Disconnected => write!(f, "configuration is disconnected"),
            AuditViolation::PerimeterMismatch { identity, walk } => write!(
                f,
                "perimeter identity gives {identity} but boundary walk measures {walk}"
            ),
            AuditViolation::PerimeterUnderflow {
                particles,
                tracked_edges,
            } => write!(
                f,
                "perimeter identity underflows: tracked edge count {tracked_edges} exceeds \
                 the 3n − 3 = {} maximum for n = {particles}",
                (3 * particles).saturating_sub(3)
            ),
        }
    }
}

/// The result of a from-scratch invariant audit of a configuration
/// (see [`crate::Configuration::audit`]).
///
/// Captures the recomputed observables alongside any violations, so a
/// clean report doubles as an independently-derived summary of the state.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditReport {
    /// Number of particles `n`.
    pub particles: usize,
    /// Edge count `e(σ)` recomputed from scratch.
    pub edges: u64,
    /// Heterogeneous edge count `h(σ)` recomputed from scratch.
    pub hetero_edges: u64,
    /// Whether the configuration is connected.
    pub connected: bool,
    /// Number of holes.
    pub holes: usize,
    /// Every violation found; empty means the state is consistent.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Whether the audit found no violations.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations rendered as human-readable strings (the format the
    /// checkpoint layer's audit hook consumes).
    #[must_use]
    pub fn violation_messages(&self) -> Vec<String> {
        self.violations.iter().map(ToString::to_string).collect()
    }

    /// The stable machine-readable codes of every violation found, in
    /// report order — what the runtime serializes into cells reports.
    #[must_use]
    pub fn violation_codes(&self) -> Vec<&'static str> {
        self.violations.iter().map(AuditViolation::code).collect()
    }
}

/// The result of [`crate::Configuration::repair`]: what an in-place
/// repair pass fixed and what it could not.
///
/// Repairable violations are exactly the counter-cache class —
/// [`AuditViolation::EdgeCountDrift`], [`AuditViolation::HeteroCountDrift`],
/// and [`AuditViolation::PerimeterUnderflow`] — since those caches are
/// fully derivable from the occupancy map. Structural violations
/// (occupancy desync, disconnection, perimeter/walk mismatch) mean the
/// primary representation itself is damaged; no in-place fix is sound, and
/// the caller must escalate to a rollback.
#[derive(Clone, Debug, PartialEq)]
pub struct RepairOutcome {
    /// Human-readable descriptions of the repairs performed.
    pub repaired: Vec<String>,
    /// Violations that cannot be repaired in place.
    pub unrepaired: Vec<AuditViolation>,
}

impl RepairOutcome {
    /// Whether every reported violation was repaired.
    #[must_use]
    pub fn fully_repaired(&self) -> bool {
        self.unrepaired.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit: n={}, e={}, h={}, connected={}, holes={}",
            self.particles, self.edges, self.hetero_edges, self.connected, self.holes
        )?;
        if self.violations.is_empty() {
            write!(f, ", consistent")
        } else {
            write!(f, ", {} violation(s): ", self.violations.len())?;
            for (i, v) in self.violations.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "{v}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = ConfigError::DuplicateNode(Node::new(1, 2));
        assert!(e.to_string().contains("(1, 2)"));
        assert!(ConfigError::Empty.to_string().contains("no particles"));
        let e = ConfigError::InvalidBias {
            name: "gamma",
            value: -1.0,
        };
        assert!(e.to_string().contains("gamma"));
        let e = ConfigError::BadColorCounts { n: 5, sum: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(ConfigError::Disconnected);
        assert!(e.to_string().contains("not connected"));
    }

    #[test]
    fn codes_are_stable_snake_case() {
        assert_eq!(ConfigError::Empty.code(), "empty");
        assert_eq!(
            ConfigError::BadColorCounts { n: 5, sum: 7 }.code(),
            "bad_color_counts"
        );
        assert_eq!(
            ChainStateError::CounterCorruption {
                counter: "edges",
                tracked: 1,
                delta: -9,
            }
            .code(),
            "counter_corruption"
        );
        assert_eq!(AuditViolation::Disconnected.code(), "disconnected");
        let report = AuditReport {
            particles: 3,
            edges: 2,
            hetero_edges: 1,
            connected: true,
            holes: 0,
            violations: vec![
                AuditViolation::EdgeCountDrift {
                    tracked: 9,
                    recomputed: 2,
                },
                AuditViolation::PerimeterUnderflow {
                    particles: 3,
                    tracked_edges: 99,
                },
            ],
        };
        assert_eq!(
            report.violation_codes(),
            vec!["edge_count_drift", "perimeter_underflow"]
        );
        // Codes stay snake_case-machine-safe.
        for code in report.violation_codes() {
            assert!(code.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
