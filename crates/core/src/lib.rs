//! The separation/integration Markov chain `M` for heterogeneous
//! self-organizing particle systems.
//!
//! This crate implements the primary contribution of Cannon, Daymude, Gökmen,
//! Randall, and Richa, *"A Local Stochastic Algorithm for Separation in
//! Heterogeneous Self-Organizing Particle Systems"* (PODC '18 brief
//! announcement; full version at APPROX/RANDOM '19):
//!
//! * [`Configuration`] — a connected system of colored particles on the
//!   triangular lattice, with incrementally maintained edge counts,
//!   heterogeneous-edge counts `h(σ)`, and perimeter `p(σ) = 3n − e(σ) − 3`;
//! * [`properties`] — the locally checkable movement conditions (Properties 4
//!   and 5 of the paper) that preserve connectivity and never create holes;
//! * [`SeparationChain`] — Algorithm 1: the Metropolis chain with bias
//!   parameters `λ` (neighbor preference) and `γ` (same-color preference),
//!   including the optional swap moves of §2.3;
//! * [`CompressionChain`] — the PODC '16 compression chain recovered as the
//!   `γ = 1` special case;
//! * [`construct`] — initial configurations (hexagons per Lemma 2, lines,
//!   random blobs) and color assignments;
//! * [`enumerate`] — exhaustive enumeration of connected hole-free
//!   configurations up to translation, and [`enumerate::ExactSeparationChain`]
//!   which exposes `M` to `sops-chains`' exact transition-matrix tooling so
//!   Lemmas 8 and 9 can be machine-checked on small systems.
//!
//! # The chain in one paragraph
//!
//! Repeatedly: pick a particle `P` (color `c_i`, location `ℓ`) uniformly at
//! random and a random neighboring location `ℓ′`. If `ℓ′` is unoccupied and
//! the move is valid (`P` does not have exactly 5 neighbors, and Property 4
//! or 5 holds), move there with probability
//! `min(1, λ^{e′−e} · γ^{e′_i−e_i})` where `e`/`e′` count `P`'s neighbors and
//! `e_i`/`e′_i` its like-colored neighbors before/after. If `ℓ′` holds a
//! particle `Q` of a different color, swap with probability
//! `min(1, γ^{|N_i(ℓ′)∖{P}| − |N_i(ℓ)| + |N_j(ℓ)∖{Q}| − |N_j(ℓ′)|})`.
//! The unique stationary distribution is
//! `π(σ) ∝ (λγ)^{−p(σ)} · γ^{−h(σ)}` over connected hole-free configurations
//! (Lemma 9), which provably separates colors for large `λ, γ` and provably
//! integrates them for `γ` near 1.
//!
//! # Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use sops_chains::MarkovChain;
//! use sops_core::{construct, Bias, SeparationChain};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! // 20 particles, 10 of each color, on a hexagonal seed configuration.
//! let mut config = construct::hexagonal_bicolored(20, 10)?;
//! let chain = SeparationChain::new(Bias::new(4.0, 4.0)?);
//! chain.run(&mut config, 10_000, &mut rng);
//! assert!(config.is_connected());
//! assert_eq!(config.len(), 20);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod chain;
mod color;
mod config;
pub mod construct;
pub mod enumerate;
mod error;
mod grid;
mod outcome;
mod params;
pub mod properties;
pub mod reconfigure;
pub mod shard;
mod snapshot;

pub use batch::{BatchReport, DEFAULT_BLOCK_PROPOSALS, MAX_BLOCK_PROPOSALS};
pub use chain::{CompressionChain, SeparationChain};
pub use color::Color;
pub use config::{CanonicalForm, Configuration, RingGather};
pub use error::{AuditReport, AuditViolation, ChainStateError, ConfigError, RepairOutcome};
pub use outcome::StepOutcome;
pub use params::{thresholds, Bias};
pub use shard::{run_sharded_reference, ParallelConfig, ParallelReport, MIN_STRIPE_ROWS};
