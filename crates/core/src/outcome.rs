//! Typed per-step outcomes of chain `M` (Algorithm 1).
//!
//! The paper analyzes the chain through *why* proposals succeed or fail —
//! the `|N(ℓ)| = 5` guard, Properties 4/5, and the Metropolis filter each
//! reject for different structural reasons — so the sampler reports a
//! [`StepOutcome`] per step instead of a bare accept bit. The boolean
//! [`SeparationChain::step`](crate::SeparationChain::step) remains a thin
//! wrapper over the classified step, so classification costs nothing extra
//! and can never drift from the real transition logic.

use std::fmt;

use sops_chains::telemetry::OutcomeClass;

/// What one activation of chain `M` did, and if it held, why.
///
/// Move proposals (target location unoccupied) fall into the first four
/// variants, in the order Algorithm 1 checks them; swap proposals (target
/// occupied by the opposite color) into the next two; the remaining
/// occupied-target cases hold without drawing from the Metropolis filter.
///
/// The enum is `#[non_exhaustive]`: future chain variants may classify
/// additional hold reasons.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
#[repr(u8)]
pub enum StepOutcome {
    /// A move proposal passed every guard and the Metropolis filter.
    MoveAccepted,
    /// A move proposal was rejected by condition (i): the activated
    /// particle has `|N(ℓ)| = 5` occupied neighbors.
    MoveRejectedFiveNeighbors,
    /// A move proposal was rejected by condition (ii): neither Property 4
    /// nor Property 5 holds for the pair `(ℓ, ℓ′)`.
    MoveRejectedProperty,
    /// A valid move proposal was rejected by the Metropolis filter
    /// `min(1, λ^{e′−e} · γ^{e′_i−e_i})`.
    MoveRejectedMetropolis,
    /// A swap proposal passed the Metropolis filter
    /// `min(1, γ^{gain_i + gain_j})`.
    SwapAccepted,
    /// A swap proposal was rejected by the Metropolis filter.
    SwapRejectedMetropolis,
    /// The target location holds a particle of the activated particle's own
    /// color: no transition exists (swaps only exchange unlike colors).
    SameColorHold,
    /// The target location is occupied and swap moves are disabled
    /// ([`SeparationChain::without_swaps`](crate::SeparationChain::without_swaps)),
    /// so the proposal holds unconditionally.
    TargetOccupiedHold,
    /// The configuration failed an internal consistency check while
    /// evaluating the proposal (counter corruption or a vanished particle);
    /// the step held and left the state untouched so the auditor can
    /// diagnose it ([`Configuration::audit`](crate::Configuration::audit)).
    InvalidStateHold,
}

impl StepOutcome {
    /// All outcome classes, in [`OutcomeClass::index`] order.
    pub const ALL: [StepOutcome; 9] = [
        StepOutcome::MoveAccepted,
        StepOutcome::MoveRejectedFiveNeighbors,
        StepOutcome::MoveRejectedProperty,
        StepOutcome::MoveRejectedMetropolis,
        StepOutcome::SwapAccepted,
        StepOutcome::SwapRejectedMetropolis,
        StepOutcome::SameColorHold,
        StepOutcome::TargetOccupiedHold,
        StepOutcome::InvalidStateHold,
    ];

    /// Stable snake_case labels, indexed by [`OutcomeClass::index`]; used
    /// as JSON keys in telemetry records.
    pub const LABELS: [&'static str; 9] = [
        "move_accepted",
        "move_rejected_five_neighbors",
        "move_rejected_property",
        "move_rejected_metropolis",
        "swap_accepted",
        "swap_rejected_metropolis",
        "same_color_hold",
        "target_occupied_hold",
        "invalid_state_hold",
    ];

    /// Whether this outcome changed the configuration.
    #[must_use]
    pub fn accepted(self) -> bool {
        matches!(self, StepOutcome::MoveAccepted | StepOutcome::SwapAccepted)
    }

    /// Whether this outcome was a move proposal (target unoccupied).
    #[must_use]
    pub fn is_move(self) -> bool {
        matches!(
            self,
            StepOutcome::MoveAccepted
                | StepOutcome::MoveRejectedFiveNeighbors
                | StepOutcome::MoveRejectedProperty
                | StepOutcome::MoveRejectedMetropolis
        )
    }

    /// Whether this outcome was a swap proposal that reached the filter.
    #[must_use]
    pub fn is_swap(self) -> bool {
        matches!(
            self,
            StepOutcome::SwapAccepted | StepOutcome::SwapRejectedMetropolis
        )
    }

    /// The stable snake_case label of this outcome.
    #[must_use]
    pub fn label_of(self) -> &'static str {
        Self::LABELS[self as usize]
    }
}

impl fmt::Display for StepOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label_of())
    }
}

impl OutcomeClass for StepOutcome {
    const CLASSES: usize = 9;

    fn index(self) -> usize {
        self as usize
    }

    fn label(index: usize) -> &'static str {
        Self::LABELS[index]
    }

    fn accepted(self) -> bool {
        StepOutcome::accepted(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_labels_stable() {
        for (i, outcome) in StepOutcome::ALL.iter().enumerate() {
            assert_eq!(OutcomeClass::index(*outcome), i);
            assert_eq!(outcome.label_of(), StepOutcome::LABELS[i]);
            assert_eq!(<StepOutcome as OutcomeClass>::label(i), outcome.label_of());
            assert_eq!(format!("{outcome}"), outcome.label_of());
        }
        assert_eq!(
            StepOutcome::ALL.len(),
            <StepOutcome as OutcomeClass>::CLASSES
        );
    }

    #[test]
    fn accepted_iff_move_or_swap_accepted() {
        for outcome in StepOutcome::ALL {
            let expect = matches!(
                outcome,
                StepOutcome::MoveAccepted | StepOutcome::SwapAccepted
            );
            assert_eq!(outcome.accepted(), expect);
            assert_eq!(OutcomeClass::accepted(outcome), expect);
        }
    }

    #[test]
    fn move_swap_partition() {
        for outcome in StepOutcome::ALL {
            assert!(!(outcome.is_move() && outcome.is_swap()));
        }
        assert!(StepOutcome::MoveRejectedProperty.is_move());
        assert!(StepOutcome::SwapRejectedMetropolis.is_swap());
        assert!(!StepOutcome::SameColorHold.is_move());
        assert!(!StepOutcome::InvalidStateHold.is_swap());
    }
}
