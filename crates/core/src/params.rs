//! Bias parameters and the paper's proven thresholds.

use core::fmt;

use crate::ConfigError;

/// The bias parameters `(λ, γ)` of the separation chain.
///
/// * `λ > 1` biases particles toward having more neighbors (compression);
/// * `γ > 1` biases particles toward having more neighbors *of their own
///   color* (separation).
///
/// Both must be strictly positive. The interesting regimes proven in the
/// paper are summarized in [`thresholds`].
///
/// # Example
///
/// ```
/// use sops_core::{thresholds, Bias};
///
/// let bias = Bias::new(4.0, 4.0)?;
/// assert!(bias.favors_compression());
/// // λγ = 16 clears the compression threshold ≈ 6.83, but γ = 4 < 4^{5/4}
/// // sits outside the *proven* separation regime (simulations separate anyway).
/// assert!(!thresholds::separation_theorem_applies(bias));
/// # Ok::<(), sops_core::ConfigError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bias {
    lambda: f64,
    gamma: f64,
}

impl Bias {
    /// Creates bias parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidBias`] if either parameter is not a
    /// strictly positive finite number.
    pub fn new(lambda: f64, gamma: f64) -> Result<Self, ConfigError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(ConfigError::InvalidBias {
                name: "lambda",
                value: lambda,
            });
        }
        if !(gamma.is_finite() && gamma > 0.0) {
            return Err(ConfigError::InvalidBias {
                name: "gamma",
                value: gamma,
            });
        }
        Ok(Bias { lambda, gamma })
    }

    /// The compression bias `λ`.
    #[inline]
    #[must_use]
    pub const fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The same-color bias `γ`.
    #[inline]
    #[must_use]
    pub const fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Whether particles favor gaining neighbors (`λ > 1`).
    #[must_use]
    pub fn favors_compression(&self) -> bool {
        self.lambda > 1.0
    }

    /// Whether particles favor like-colored neighbors (`γ > 1`).
    #[must_use]
    pub fn favors_homogeneity(&self) -> bool {
        self.gamma > 1.0
    }
}

impl fmt::Display for Bias {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ = {}, γ = {}", self.lambda, self.gamma)
    }
}

/// The quantitative thresholds proven in the paper (Theorems 13–16).
///
/// These are the *proven* bounds; §3.2 observes that simulations achieve
/// separation for considerably milder parameters (e.g. `λ = γ = 4`), so the
/// bounds are not believed tight.
pub mod thresholds {
    use super::Bias;

    /// `4^{5/4} ≈ 5.657`: Theorem 13 requires `γ` above this for the
    /// loop-polymer cluster expansion to converge.
    pub const GAMMA_SEPARATION: f64 = 5.656_854_249_492_381;

    /// `2(2 + √2)·e^{0.0003} ≈ 6.830`: the compression threshold on `λγ`
    /// (Theorem 13) and on `λ(γ + 1)` (Theorem 15).
    pub const COMPRESSION_PRODUCT: f64 = 6.830_475_960_193_564_5;

    /// Lower end of the integration window, `79/81` (Theorems 15–16).
    pub const GAMMA_INTEGRATION_LO: f64 = 79.0 / 81.0;

    /// Upper end of the integration window, `81/79` (Theorems 15–16).
    pub const GAMMA_INTEGRATION_HI: f64 = 81.0 / 79.0;

    /// Whether `(λ, γ)` lies in the regime where Theorems 13 + 14 prove
    /// compression and `(β, δ)`-separation w.h.p.: `λ > 1`, `γ > 4^{5/4}`,
    /// and `λγ > 2(2 + √2)e^{0.0003}`.
    #[must_use]
    pub fn separation_theorem_applies(bias: Bias) -> bool {
        bias.lambda() > 1.0
            && bias.gamma() > GAMMA_SEPARATION
            && bias.lambda() * bias.gamma() > COMPRESSION_PRODUCT
    }

    /// Whether `(λ, γ)` lies in the regime where Theorems 15 + 16 prove
    /// compression but *no* separation (integration) w.h.p.: `λ > 1`,
    /// `γ ∈ (79/81, 81/79)`, and `λ(γ + 1) > 2(2 + √2)e^{0.0003}`.
    #[must_use]
    pub fn integration_theorem_applies(bias: Bias) -> bool {
        bias.lambda() > 1.0
            && bias.gamma() > GAMMA_INTEGRATION_LO
            && bias.gamma() < GAMMA_INTEGRATION_HI
            && bias.lambda() * (bias.gamma() + 1.0) > COMPRESSION_PRODUCT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_nonpositive_and_nonfinite_parameters() {
        assert!(Bias::new(0.0, 1.0).is_err());
        assert!(Bias::new(1.0, -2.0).is_err());
        assert!(Bias::new(f64::NAN, 1.0).is_err());
        assert!(Bias::new(1.0, f64::INFINITY).is_err());
        assert!(Bias::new(0.5, 0.5).is_ok());
    }

    #[test]
    fn threshold_constants_match_closed_forms() {
        assert!((thresholds::GAMMA_SEPARATION - 4.0_f64.powf(1.25)).abs() < 1e-12);
        let expect = 2.0 * (2.0 + 2.0_f64.sqrt()) * (0.0003_f64).exp();
        assert!((thresholds::COMPRESSION_PRODUCT - expect).abs() < 1e-12);
        let (lo, hi) = (
            thresholds::GAMMA_INTEGRATION_LO,
            thresholds::GAMMA_INTEGRATION_HI,
        );
        assert!(lo < 1.0 && hi > 1.0 && (lo * hi - 1.0).abs() < 1e-15);
    }

    #[test]
    fn proven_separation_regime() {
        // γ = 6 > 4^{5/4}, λγ = 12 > 6.83.
        assert!(thresholds::separation_theorem_applies(
            Bias::new(2.0, 6.0).unwrap()
        ));
        // γ = 4 fails the γ bound even though λγ is large.
        assert!(!thresholds::separation_theorem_applies(
            Bias::new(10.0, 4.0).unwrap()
        ));
        // λγ too small.
        assert!(!thresholds::separation_theorem_applies(
            Bias::new(1.1, 5.7).unwrap()
        ));
    }

    #[test]
    fn proven_integration_regime() {
        // γ = 1 (inside window), λ(γ+1) = 8 > 6.83.
        assert!(thresholds::integration_theorem_applies(
            Bias::new(4.0, 1.0).unwrap()
        ));
        // Counterintuitive case from the abstract: γ slightly above 1 still integrates.
        assert!(thresholds::integration_theorem_applies(
            Bias::new(4.0, 1.01).unwrap()
        ));
        // γ outside the window.
        assert!(!thresholds::integration_theorem_applies(
            Bias::new(4.0, 1.5).unwrap()
        ));
        // λ(γ+1) too small.
        assert!(!thresholds::integration_theorem_applies(
            Bias::new(2.0, 1.0).unwrap()
        ));
    }

    #[test]
    fn regime_predicates() {
        let b = Bias::new(4.0, 0.5).unwrap();
        assert!(b.favors_compression());
        assert!(!b.favors_homogeneity());
        assert_eq!(b.to_string(), "λ = 4, γ = 0.5");
    }
}
