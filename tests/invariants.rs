//! Property-based invariant tests for the chain and its substrates
//! (proptest over random seeds, parameters, and system sizes).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sops::chains::{Checkpoint, MarkovChain, StateCodec};
use sops::core::{construct, properties, Bias, Color, Configuration, SeparationChain};
use sops::lattice::{Node, DIRECTIONS};

fn random_config(n: usize, n1: usize, seed: u64) -> Configuration {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = construct::hexagonal_spiral(n);
    Configuration::new(construct::bicolor_random(nodes, n1, &mut rng)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Connectivity, hole-freeness, particle count, and color counts are
    /// invariant under arbitrary runs at arbitrary (λ, γ).
    #[test]
    fn chain_preserves_invariants(
        seed in 0u64..10_000,
        n in 5usize..40,
        lambda in 0.5f64..6.0,
        gamma in 0.5f64..6.0,
        swaps in any::<bool>(),
    ) {
        let n1 = n / 2;
        let mut config = random_config(n, n1, seed);
        let colors_before = config.color_counts();
        let bias = Bias::new(lambda, gamma).unwrap();
        let chain = if swaps {
            SeparationChain::new(bias)
        } else {
            SeparationChain::without_swaps(bias)
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
        chain.run(&mut config, 3_000, &mut rng);

        prop_assert!(config.is_connected());
        prop_assert!(!config.has_holes());
        prop_assert_eq!(config.len(), n);
        prop_assert_eq!(config.color_counts(), colors_before);
        let audit = config.audit();
        prop_assert!(audit.is_consistent(), "audit violations: {:?}", audit.violations);
    }

    /// The incrementally maintained observables never drift from a from-
    /// scratch recount, and the perimeter identity holds throughout.
    #[test]
    fn incremental_observables_match_recount(
        seed in 0u64..10_000,
        n in 5usize..30,
        gamma in 0.5f64..5.0,
    ) {
        let mut config = random_config(n, n / 3, seed);
        let chain = SeparationChain::new(Bias::new(3.0, gamma).unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..40 {
            chain.run(&mut config, 100, &mut rng);
            let (e, h) = config.recount();
            prop_assert_eq!(config.edge_count(), e);
            prop_assert_eq!(config.hetero_edge_count(), h);
            prop_assert_eq!(config.edge_count(), 3 * n as u64 - config.perimeter() - 3);
            prop_assert_eq!(config.boundary_walk_length(), config.perimeter());
        }
    }

    /// Lemma 7 (reversibility), property-level: whenever a single-particle
    /// move from ℓ to ℓ′ is allowed, the reverse move from ℓ′ to ℓ is
    /// allowed in the resulting configuration.
    #[test]
    fn allowed_moves_are_reversible(
        seed in 0u64..10_000,
        n in 4usize..25,
    ) {
        let config = random_config(n, n / 2, seed);
        let chain = SeparationChain::new(Bias::new(2.0, 2.0).unwrap());
        for p in 0..config.len() {
            let from = config.position_of(p);
            for dir in DIRECTIONS {
                if !chain.move_valid(&config, from, dir) {
                    continue;
                }
                let to = from.neighbor(dir);
                let mut moved = config.clone();
                moved.move_particle(p, to);
                let back = to.direction_to(from).unwrap();
                prop_assert!(
                    chain.move_valid(&moved, to, back),
                    "move {from}→{to} is not reversible (seed {seed})"
                );
            }
        }
    }

    /// Swap moves preserve the multiset of occupied nodes and the total
    /// edge count; double swap is the identity.
    #[test]
    fn swaps_are_involutions(
        seed in 0u64..10_000,
        n in 4usize..25,
    ) {
        let config = random_config(n, n / 2, seed);
        for p in 0..config.len() {
            let a = config.position_of(p);
            for dir in DIRECTIONS {
                let b = a.neighbor(dir);
                if !config.is_occupied(b) {
                    continue;
                }
                let mut swapped = config.clone();
                swapped.swap(a, b);
                prop_assert_eq!(swapped.edge_count(), config.edge_count());
                let (_, h) = swapped.recount();
                prop_assert_eq!(swapped.hetero_edge_count(), h);
                swapped.swap(a, b);
                prop_assert_eq!(swapped.canonical_form(), config.canonical_form());
            }
        }
    }

    /// The min-cut separation certificate is self-consistent on arbitrary
    /// colorings: region + outside partition the system and the counts add
    /// up to the global color counts.
    #[test]
    fn separation_certificates_partition_the_system(
        seed in 0u64..10_000,
        n in 6usize..40,
        n1_frac in 0.2f64..0.8,
    ) {
        let n1 = ((n as f64) * n1_frac) as usize;
        let config = random_config(n, n1, seed);
        for cert in sops::analysis::separation_profile(&config, Color::C1) {
            prop_assert_eq!(cert.region_size + cert.outside_size, n);
            prop_assert_eq!(cert.c1_in_region + cert.c1_outside, n1);
            prop_assert_eq!(cert.region.len(), cert.region_size);
        }
    }

    /// Property 4 and 5 are mutually exclusive on every occupancy pattern
    /// (they require |S| ≥ 1 and |S| = 0 respectively).
    #[test]
    fn properties_4_and_5_are_disjoint(bits in 0u16..256) {
        let occ: [bool; 8] = core::array::from_fn(|i| bits & (1 << i) != 0);
        prop_assert!(!(properties::property4(occ) && properties::property5(occ)));
    }

    /// Checkpoint text serialization is lossless for arbitrary
    /// configurations, RNG snapshots, step counters, and observable logs
    /// (including non-finite observable values, compared bit-for-bit).
    #[test]
    fn checkpoint_text_roundtrip_is_lossless(
        seed in 0u64..10_000,
        n in 2usize..30,
        step in any::<u64>(),
        accepted in any::<u64>(),
        rng_state in proptest::collection::vec(any::<u8>(), 0..64),
        log in proptest::collection::vec((any::<u64>(), any::<f64>()), 0..12),
        aux in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let state = random_config(n, n / 2, seed);
        let ckpt = Checkpoint { step, accepted, rng_state, log, state, aux };
        let text = ckpt.to_text();
        let back = Checkpoint::<Configuration>::from_text(&text).unwrap();
        prop_assert_eq!(back.step, ckpt.step);
        prop_assert_eq!(back.accepted, ckpt.accepted);
        prop_assert_eq!(&back.rng_state, &ckpt.rng_state);
        prop_assert_eq!(&back.aux, &ckpt.aux);
        prop_assert_eq!(back.log.len(), ckpt.log.len());
        for (a, b) in back.log.iter().zip(&ckpt.log) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        prop_assert_eq!(back.state.encode_state(), ckpt.state.encode_state());
    }

    /// Any single-character corruption of a checkpoint snapshot is caught:
    /// the checksum (or the line structure it protects) rejects the text.
    /// The replacement character `z` never occurs in valid snapshots, so
    /// every corruption is a genuine change.
    #[test]
    fn corrupted_checkpoint_text_is_rejected(
        seed in 0u64..10_000,
        n in 2usize..20,
        position in any::<prop::sample::Index>(),
    ) {
        let state = random_config(n, n / 2, seed);
        let ckpt = Checkpoint {
            step: 17,
            accepted: 5,
            rng_state: vec![1, 2, 3, 4],
            log: vec![(0, 0.5), (10, 0.25)],
            state,
            aux: vec![9, 8, 7],
        };
        let text = ckpt.to_text();
        let idx = position.index(text.len());
        let mut corrupted: Vec<char> = text.chars().collect();
        corrupted[idx] = 'z';
        let corrupted: String = corrupted.into_iter().collect();
        prop_assert!(Checkpoint::<Configuration>::from_text(&corrupted).is_err());
    }

    /// Canonical forms are invariant under arbitrary translations.
    #[test]
    fn canonical_form_translation_invariance(
        seed in 0u64..10_000,
        n in 2usize..20,
        dx in -50i32..50,
        dy in -50i32..50,
    ) {
        let config = random_config(n, n / 2, seed);
        let translated = Configuration::new(
            config.particles().map(|(nd, c)| (Node::new(nd.x + dx, nd.y + dy), c)),
        )
        .unwrap();
        prop_assert_eq!(config.canonical_form(), translated.canonical_form());
    }
}

/// Deterministic regression: the amoebot system and the centralized chain
/// agree on conservation laws after long runs.
#[test]
fn amoebot_conserves_particles_and_colors() {
    let mut rng = StdRng::seed_from_u64(99);
    let config = random_config(24, 11, 99);
    let colors_before = config.color_counts();
    let mut system = sops::amoebot::AmoebotSystem::new(&config, Bias::new(4.0, 4.0).unwrap(), true);
    for _ in 0..200_000 {
        system.activate_random(&mut rng);
    }
    let after = system.serialized_configuration();
    assert_eq!(after.len(), 24);
    assert_eq!(after.color_counts(), colors_before);
    assert!(after.is_connected());
}
