//! Round-trip checks for the checkpoint state codec: a `Configuration`
//! serialized through `StateCodec` (the wire format used by the
//! checkpoint/resume layer in `sops-chains`) must decode to an identical
//! configuration — same particle indexing, same positions and colors, and
//! identical incremental observables after the decode-side recount.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sops::chains::StateCodec;
use sops::core::{construct, Configuration};

fn random_config(n: usize, n1: usize, seed: u64) -> Configuration {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = construct::hexagonal_spiral(n);
    Configuration::new(construct::bicolor_random(nodes, n1, &mut rng)).unwrap()
}

#[test]
fn configuration_codec_roundtrip_preserves_everything() {
    for (n, n1, seed) in [(1, 0, 1), (2, 1, 2), (30, 13, 3), (100, 50, 4)] {
        let config = random_config(n, n1, seed);
        let bytes = config.encode_state();
        let back = Configuration::decode_state(&bytes).unwrap();
        assert_eq!(back.len(), config.len());
        for p in 0..config.len() {
            assert_eq!(back.position_of(p), config.position_of(p), "particle {p}");
            assert_eq!(back.color_of(p), config.color_of(p), "particle {p}");
        }
        assert_eq!(back.edge_count(), config.edge_count());
        assert_eq!(back.hetero_edge_count(), config.hetero_edge_count());
        assert_eq!(back.perimeter(), config.perimeter());
        assert_eq!(back.canonical_form(), config.canonical_form());
        // Encoding is canonical: a decode/re-encode cycle is the identity.
        assert_eq!(back.encode_state(), bytes);
    }
}

#[test]
fn configuration_codec_rejects_malformed_input() {
    let config = random_config(12, 6, 9);
    let bytes = config.encode_state();
    // Truncated payloads and trailing garbage are both rejected.
    assert!(Configuration::decode_state(&bytes[..bytes.len() - 1]).is_err());
    let mut extended = bytes.clone();
    extended.push(0);
    assert!(Configuration::decode_state(&extended).is_err());
    assert!(Configuration::decode_state(&[]).is_err());
}
