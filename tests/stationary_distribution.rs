//! Cross-crate verification of Lemmas 8 and 9: the sampling chain, the
//! exact transition matrix, and the closed-form stationary distribution all
//! agree.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sops::chains::stats::EmpiricalDistribution;
use sops::chains::{MarkovChain, TransitionMatrix};
use sops::core::enumerate::{self, ExactSeparationChain};
use sops::core::{construct, Bias, CanonicalForm, Configuration, SeparationChain};

/// Long-run samples of the *sampling* chain must match the *exact*
/// stationary distribution of Lemma 9 in total variation.
#[test]
fn sampler_converges_to_lemma9_distribution() {
    let bias = Bias::new(2.0, 3.0).unwrap();
    let chain = SeparationChain::new(bias);
    let exact = ExactSeparationChain::new(chain, 3, 1);
    let matrix = TransitionMatrix::build(&exact);
    let pi = exact.lemma9_distribution(matrix.states());

    let mut rng = StdRng::seed_from_u64(20180723);
    let mut config = construct::hexagonal_bicolored(3, 1).unwrap();
    let mut empirical: EmpiricalDistribution<CanonicalForm> = EmpiricalDistribution::new();
    // Burn in, then sample sparsely to cut autocorrelation.
    chain.run(&mut config, 20_000, &mut rng);
    for _ in 0..60_000 {
        chain.run(&mut config, 25, &mut rng);
        empirical.record(config.canonical_form());
    }

    let tv = empirical.total_variation_to(matrix.states().iter().zip(pi.iter().copied()));
    assert!(tv < 0.02, "TV(empirical, π) = {tv}");
    // Every state of the enumerated space is visited.
    assert_eq!(empirical.support_size(), matrix.len());
}

/// The same agreement holds in a regime with γ < 1 (anti-separation bias).
#[test]
fn sampler_matches_exact_distribution_at_gamma_below_one() {
    let bias = Bias::new(3.0, 0.7).unwrap();
    let chain = SeparationChain::new(bias);
    let exact = ExactSeparationChain::new(chain, 3, 1);
    let matrix = TransitionMatrix::build(&exact);
    let pi = exact.lemma9_distribution(matrix.states());
    assert!(matrix.detailed_balance_violation(&pi) < 1e-12);

    let mut rng = StdRng::seed_from_u64(4);
    let mut config = construct::hexagonal_bicolored(3, 1).unwrap();
    let mut empirical: EmpiricalDistribution<CanonicalForm> = EmpiricalDistribution::new();
    chain.run(&mut config, 20_000, &mut rng);
    for _ in 0..60_000 {
        chain.run(&mut config, 25, &mut rng);
        empirical.record(config.canonical_form());
    }
    let tv = empirical.total_variation_to(matrix.states().iter().zip(pi.iter().copied()));
    assert!(tv < 0.02, "TV = {tv}");
}

/// Lemma 9 on a monochromatic space is the compression measure λ^{−p}; the
/// most likely states are the minimal-perimeter ones.
#[test]
fn compression_measure_prefers_minimal_perimeter() {
    let bias = Bias::new(4.0, 1.0).unwrap();
    let chain = SeparationChain::new(bias);
    let exact = ExactSeparationChain::new(chain, 5, 0);
    let matrix = TransitionMatrix::build(&exact);
    assert!(matrix.is_irreducible());
    let pi = exact.lemma9_distribution(matrix.states());
    assert!(matrix.detailed_balance_violation(&pi) < 1e-12);

    // argmax π has minimal perimeter.
    let (best, _) = pi
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    let best_perimeter = matrix.states()[best].to_configuration().perimeter();
    assert_eq!(best_perimeter, construct::min_perimeter(5));
}

/// π weights depend only on (p(σ), h(σ)): states with equal perimeter and
/// equal heterogeneous-edge count are exactly equally likely.
#[test]
fn lemma9_weights_are_functions_of_p_and_h() {
    let bias = Bias::new(2.5, 1.7).unwrap();
    let chain = SeparationChain::new(bias);
    let exact = ExactSeparationChain::new(chain, 4, 2);
    let matrix = TransitionMatrix::build(&exact);
    let pi = exact.lemma9_distribution(matrix.states());

    let mut by_class: std::collections::HashMap<(u64, u64), f64> = std::collections::HashMap::new();
    for (state, &p) in matrix.states().iter().zip(pi.iter()) {
        let config = state.to_configuration();
        let key = (config.perimeter(), config.hetero_edge_count());
        let existing = by_class.entry(key).or_insert(p);
        assert!(
            (*existing - p).abs() < 1e-15,
            "states in class {key:?} have different masses"
        );
    }
    assert!(by_class.len() > 1);
}

/// The mixing time on the tiny space is finite and the exact t-step
/// distribution reaches π (Lemma 8's ergodicity, quantitatively).
#[test]
fn exact_chain_mixes() {
    let bias = Bias::new(2.0, 2.0).unwrap();
    let chain = SeparationChain::new(bias);
    let exact = ExactSeparationChain::new(chain, 3, 1);
    let matrix = TransitionMatrix::build(&exact);
    let pi = exact.lemma9_distribution(matrix.states());
    let t_mix = matrix
        .mixing_time(&pi, 0.25, 100_000)
        .expect("chain must mix");
    assert!(t_mix > 0);
    // And at 4× that time the distance is far below the threshold.
    let d = matrix.t_step_distribution(0, 4 * t_mix);
    assert!(TransitionMatrix::<CanonicalForm>::total_variation(&d, &pi) < 0.05);
}

/// Identity e(σ) = 3n − p(σ) − 3 (used in Lemma 9's proof) over every
/// enumerated hole-free configuration of up to 7 particles, with the
/// boundary walk as an independent perimeter oracle.
#[test]
fn perimeter_identity_exhaustive() {
    for n in 1..=7usize {
        for shape in enumerate::hole_free_shapes(n) {
            let config =
                Configuration::new(shape.into_iter().map(|nd| (nd, sops::core::Color::C1)))
                    .unwrap();
            let e = config.edge_count();
            let p = config.perimeter();
            assert_eq!(e, 3 * n as u64 - p - 3, "identity fails at n = {n}");
            assert_eq!(
                config.boundary_walk_length(),
                p,
                "walk disagrees at n = {n}"
            );
        }
    }
}
