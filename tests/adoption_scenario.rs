//! A downstream-user scenario exercising the high-level APIs together:
//! build a system, sweep the phase diagram, certify the separated corner,
//! extract its interface geometry, and replay an irreducibility witness.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sops::analysis::{interface, moments, sweep, Phase, PhaseThresholds};
use sops::core::{construct, reconfigure, Color, Configuration};

#[test]
fn full_pipeline_from_seed_to_certified_phases() {
    let mut rng = StdRng::seed_from_u64(2019);
    let nodes = construct::hexagonal_spiral(36);
    let seed = Configuration::new(construct::bicolor_random(nodes, 18, &mut rng)).unwrap();

    // 1. Sweep a 2×2 corner grid of the Figure 3 diagram.
    let diagram = sweep::phase_diagram(
        &seed,
        &[0.8, 4.0],
        &[1.0, 4.0],
        300_000,
        PhaseThresholds::default(),
        &mut rng,
    )
    .unwrap();
    assert_eq!(diagram.cell(1, 1).phase, Phase::CompressedSeparated);

    // 2. Re-run the separated corner to get a configuration to inspect.
    let chain = sops::core::SeparationChain::new(sops::core::Bias::new(4.0, 4.0).unwrap());
    let mut config = seed.clone();
    sops::chains::MarkovChain::run(&chain, &mut config, 600_000, &mut rng);

    // 3. Its interface should be short and its color centroids split.
    let summary = interface::summarize(&config);
    assert!(summary.total_length as u64 == config.hetero_edge_count());
    assert!(
        summary.total_length < 40,
        "interface {}",
        summary.total_length
    );
    let split = moments::centroid_separation(&config, Color::C1, Color::C2).unwrap();
    assert!(split > 0.5, "centroid separation {split}");

    // 4. And from there, an explicit witness reaches the sorted line.
    let steps = reconfigure::line_witness(&config).unwrap();
    let mut work = config.clone();
    reconfigure::apply(&mut work, &steps);
    let colors: Vec<Color> = config.particles().map(|(_, c)| c).collect();
    assert_eq!(
        work.canonical_form(),
        reconfigure::sorted_line_form(&colors)
    );
}

#[test]
fn hardcore_and_potts_reference_models_are_consistent() {
    use sops::lattice::region::Region;
    use sops::polymer::{hardcore, potts};

    let region = Region::parallelogram(3, 2);
    // Hard-core at fugacity 1 counts independent sets; Potts at γ = 1
    // counts colorings — two independent sanity anchors for the region
    // graph the polymer machinery sees.
    let ind = hardcore::independent_set_count(&region);
    assert!(ind > 1);
    let z = potts::potts_partition_function_direct(&region, 1.0, 3);
    assert!((z - 3f64.powi(region.len() as i32)).abs() < 1e-6);
}
