//! Integration tests spanning crates: the polymer machinery against the
//! particle-system enumeration, and the distributed amoebot layer against
//! the centralized chain.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sops::amoebot::AmoebotSystem;
use sops::chains::stats::EmpiricalDistribution;
use sops::chains::{MarkovChain, TransitionMatrix};
use sops::core::enumerate::{self, ExactSeparationChain};
use sops::core::{construct, Bias, CanonicalForm, Color, Configuration, SeparationChain};
use sops::lattice::region::Region;
use sops::polymer::ising;

/// The high-temperature expansion used for Theorem 15, cross-checked
/// against the particle-system layer: for a fixed shape, summing
/// `γ^{−h(σ)}` over all colorings via `Configuration` equals the polymer
/// crate's even-subgraph expansion on the same region.
#[test]
fn ht_expansion_matches_configuration_color_sum() {
    for gamma in [79.0f64 / 81.0, 81.0 / 79.0, 2.0] {
        for region in [Region::hexagon(1), Region::parallelogram(4, 2)] {
            let nodes = region.nodes().to_vec();
            let n = nodes.len();
            // Direct sum over colorings using the core Configuration type.
            let mut direct = 0.0;
            for mask in 0u32..(1 << n) {
                let config = Configuration::new(nodes.iter().enumerate().map(|(i, &nd)| {
                    let c = if mask & (1 << i) != 0 {
                        Color::C1
                    } else {
                        Color::C2
                    };
                    (nd, c)
                }))
                .unwrap();
                direct += gamma.powi(-(config.hetero_edge_count() as i32));
            }
            let ht = ising::color_partition_function_ht(&region, gamma);
            assert!(
                (direct - ht).abs() / direct < 1e-10,
                "γ = {gamma}: direct {direct} vs HT {ht}"
            );
        }
    }
}

/// Lemma 9 from the other side: the fixed-shape conditional distribution
/// `π_P(σ) ∝ γ^{−h(σ)}` (used in Theorems 14 and 16) is exactly the
/// restriction of the full stationary distribution to one shape.
#[test]
fn fixed_shape_conditional_distribution_is_gibbs_in_h() {
    let bias = Bias::new(2.0, 3.0).unwrap();
    let chain = SeparationChain::new(bias);
    let exact = ExactSeparationChain::new(chain, 4, 2);
    let matrix = TransitionMatrix::build(&exact);
    let pi = exact.lemma9_distribution(matrix.states());

    // Group states by shape; within each shape the conditional mass must be
    // proportional to γ^{−h}.
    type MassAndHetero = Vec<(f64, u64)>;
    let mut by_shape: std::collections::HashMap<Vec<(i32, i32)>, MassAndHetero> =
        std::collections::HashMap::new();
    for (state, &mass) in matrix.states().iter().zip(pi.iter()) {
        let config = state.to_configuration();
        let shape: Vec<(i32, i32)> = state.cells().iter().map(|&(x, y, _)| (x, y)).collect();
        by_shape
            .entry(shape)
            .or_default()
            .push((mass, config.hetero_edge_count()));
    }
    for (shape, entries) in by_shape {
        let (m0, h0) = entries[0];
        for &(m, h) in &entries[1..] {
            let expected_ratio = bias.gamma().powi(h0 as i32 - h as i32);
            assert!(
                (m / m0 - expected_ratio).abs() < 1e-10,
                "shape {shape:?}: mass ratio {} vs γ^Δh {expected_ratio}",
                m / m0
            );
        }
    }
}

/// The distributed amoebot execution realizes the same jump chain as `M`:
/// its serialized-configuration distribution over a long run is close to
/// Lemma 9's π. The tolerance is looser than for the centralized sampler
/// because asynchronous snapshots reweight states by expansion dwell time
/// (see the module docs of `sops-amoebot`); EXPERIMENTS.md records the
/// measured gap.
#[test]
fn amoebot_distribution_approximates_stationary_distribution() {
    let bias = Bias::new(2.0, 2.0).unwrap();
    let chain = SeparationChain::new(bias);
    let exact = ExactSeparationChain::new(chain, 3, 1);
    let matrix = TransitionMatrix::build(&exact);
    let pi = exact.lemma9_distribution(matrix.states());

    let seed_config = construct::hexagonal_bicolored(3, 1).unwrap();
    let mut system = AmoebotSystem::new(&seed_config, bias, true);
    let mut rng = StdRng::seed_from_u64(8);
    let mut empirical: EmpiricalDistribution<CanonicalForm> = EmpiricalDistribution::new();
    for _ in 0..50_000 {
        system.activate_random(&mut rng);
    }
    for _ in 0..120_000 {
        for _ in 0..20 {
            system.activate_random(&mut rng);
        }
        empirical.record(system.serialized_configuration().canonical_form());
    }
    let tv = empirical.total_variation_to(matrix.states().iter().zip(pi.iter().copied()));
    assert!(tv < 0.08, "TV(amoebot, π) = {tv}");
    assert_eq!(empirical.support_size(), matrix.len());
}

/// Enumeration layer against the construction layer: the exact minimum
/// perimeter over all enumerated hole-free shapes equals the closed-form
/// `min_perimeter` AND is achieved by the hexagonal spiral, for every n we
/// can enumerate.
#[test]
fn enumerated_minimum_perimeter_matches_spiral() {
    for n in 1..=8usize {
        let enumerated_min = enumerate::perimeter_counts(n)
            .keys()
            .next()
            .copied()
            .unwrap();
        let spiral = Configuration::new(
            construct::hexagonal_spiral(n)
                .into_iter()
                .map(|nd| (nd, Color::C1)),
        )
        .unwrap();
        assert_eq!(enumerated_min, construct::min_perimeter(n), "n = {n}");
        assert_eq!(spiral.perimeter(), enumerated_min, "n = {n}");
    }
}

/// Kill-and-resume smoke test across the stack: a checkpointed separation
/// run that is interrupted mid-flight — with its newest snapshot then
/// *corrupted* on disk, as a crash mid-write would leave it — resumes from
/// the next-newest valid snapshot and finishes bitwise-identical to an
/// uninterrupted run: same serialized state, same acceptance count, same
/// observable log.
#[test]
fn checkpointed_run_survives_kill_and_corrupt_resume() {
    use sops::chains::{CheckpointStore, MarkovChainCheckpointExt as _, StateCodec as _};
    use std::io::Write as _;

    let scratch = std::env::temp_dir().join(format!("sops-cross-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let n = 24;
    let steps = 40_000;
    let every = 4_000;
    let bias = Bias::new(4.0, 4.0).unwrap();
    let chain = SeparationChain::new(bias);
    let seed_config = {
        let mut rng = StdRng::seed_from_u64(77);
        let nodes = construct::hexagonal_spiral(n);
        Configuration::new(construct::bicolor_random(nodes, n / 2, &mut rng)).unwrap()
    };
    let observe = sops::analysis::metrics::hetero_fraction;

    // Reference: uninterrupted run.
    let store_a = CheckpointStore::open(scratch.join("a"), 3).unwrap();
    let mut state_a = seed_config.clone();
    let mut rng_a = StdRng::seed_from_u64(7);
    let run_a = chain
        .run_checkpointed(&mut state_a, steps, every, &mut rng_a, &store_a, observe)
        .unwrap();

    // "Killed" run: stops at 60%, and the snapshot written last is torn.
    let store_b = CheckpointStore::open(scratch.join("b"), 3).unwrap();
    let mut state_b = seed_config.clone();
    let mut rng_b = StdRng::seed_from_u64(7);
    chain
        .run_checkpointed(
            &mut state_b,
            steps * 3 / 5,
            every,
            &mut rng_b,
            &store_b,
            observe,
        )
        .unwrap();
    let newest = store_b.list().unwrap().pop().unwrap();
    let torn = std::fs::read_to_string(&newest).unwrap();
    let mut f = std::fs::File::create(&newest).unwrap();
    f.write_all(&torn.as_bytes()[..torn.len() / 2]).unwrap();
    drop(f);

    // Resume with a *wrong-seed* RNG and a fresh state: both must be fully
    // restored from the newest valid snapshot, not reused.
    let mut state_c = seed_config.clone();
    let mut rng_c = StdRng::seed_from_u64(999_999);
    let run_c = chain
        .run_checkpointed(&mut state_c, steps, every, &mut rng_c, &store_b, observe)
        .unwrap();

    assert_eq!(
        run_c.rejected,
        vec![newest],
        "torn snapshot must be skipped"
    );
    assert!(run_c.resumed_from.is_some());
    assert_eq!(state_c.encode_state(), state_a.encode_state());
    assert_eq!(run_c.accepted, run_a.accepted);
    assert_eq!(run_c.log.len(), run_a.log.len());
    for (x, y) in run_c.log.iter().zip(&run_a.log) {
        assert_eq!(x.0, y.0);
        assert_eq!(x.1.to_bits(), y.1.to_bits());
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

/// End-to-end: starting from a line (maximal perimeter), the chain at
/// compression-regime parameters reaches an α-compressed, separated state;
/// at integration parameters it compresses but does not separate.
#[test]
fn end_to_end_phases_on_moderate_system() {
    let n = 40;
    let mut rng = StdRng::seed_from_u64(5);

    // Separation regime.
    let nodes = construct::hexagonal_spiral(n);
    let mut config =
        Configuration::new(construct::bicolor_random(nodes.clone(), n / 2, &mut rng)).unwrap();
    SeparationChain::new(Bias::new(4.0, 4.0).unwrap()).run(&mut config, 2_000_000, &mut rng);
    assert!(sops::analysis::is_alpha_compressed(&config, 2.0));
    assert!(sops::analysis::is_separated(&config, 4.0, 0.2).is_some());

    // Integration regime (γ = 1): compressed but mixed.
    let mut config = Configuration::new(construct::bicolor_random(nodes, n / 2, &mut rng)).unwrap();
    SeparationChain::new(Bias::new(4.0, 1.0).unwrap()).run(&mut config, 2_000_000, &mut rng);
    assert!(sops::analysis::is_alpha_compressed(&config, 2.0));
    assert!(
        sops::analysis::is_separated(&config, 2.0, 0.1).is_none(),
        "γ = 1 run should not be strictly separated"
    );
}
