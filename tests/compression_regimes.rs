//! The PODC '16 compression dichotomy, reproduced through the γ = 1
//! special case: λ > 2 + √2 provably compresses, λ < 2.17 provably
//! expands. Our separation chain must inherit both regimes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sops::analysis::alpha_ratio;
use sops::chains::MarkovChain;
use sops::core::{construct, CompressionChain};

fn stationary_alpha(lambda: f64, n: usize, steps: u64, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = construct::line_monochromatic(n).unwrap();
    let chain = CompressionChain::new(lambda).unwrap();
    chain.run(&mut config, steps, &mut rng);
    // Average the tail to damp fluctuations.
    let mut acc = 0.0;
    for _ in 0..20 {
        chain.run(&mut config, steps / 20, &mut rng);
        acc += alpha_ratio(&config);
    }
    acc / 20.0
}

#[test]
fn supercritical_lambda_compresses_from_a_line() {
    // λ = 4 > 2 + √2 ≈ 3.414: the line must collapse to a near-hexagon.
    let alpha = stationary_alpha(4.0, 50, 1_500_000, 1);
    assert!(alpha < 2.0, "λ = 4 failed to compress: α = {alpha:.2}");
}

#[test]
fn subcritical_lambda_stays_expanded() {
    // λ = 1 < 2.17: stationary measure is dominated by high-perimeter
    // configurations; α stays far above the compressed regime.
    let alpha = stationary_alpha(1.0, 50, 1_500_000, 2);
    assert!(alpha > 2.5, "λ = 1 unexpectedly compressed: α = {alpha:.2}");
}

#[test]
fn compression_strengthens_with_lambda() {
    let a2 = stationary_alpha(2.0, 40, 1_000_000, 3);
    let a6 = stationary_alpha(6.0, 40, 1_000_000, 3);
    assert!(
        a6 < a2,
        "compression should strengthen with λ: α(2) = {a2:.2}, α(6) = {a6:.2}"
    );
}

#[test]
fn monochromatic_separation_chain_equals_compression_chain_statistically() {
    // On a single color, SeparationChain(λ, γ) must behave identically to
    // CompressionChain(λ) for any γ: every ratio exponent involving γ has
    // the same color on both sides. Check the two reach the same
    // stationary perimeter distribution summary under the same seed.
    use sops::core::{Bias, SeparationChain};
    let n = 30;
    let steps = 400_000;

    let mut rng = StdRng::seed_from_u64(7);
    let mut a = construct::line_monochromatic(n).unwrap();
    CompressionChain::new(3.0)
        .unwrap()
        .run(&mut a, steps, &mut rng);

    let mut rng = StdRng::seed_from_u64(7);
    let mut b = construct::line_monochromatic(n).unwrap();
    // γ = 9 is irrelevant on a monochromatic system *except* through the
    // move filter exponent e'_i − e_i = e' − e, making the effective bias
    // λγ = 27; compare instead with γ = 1 for exact equality.
    SeparationChain::new(Bias::new(3.0, 1.0).unwrap()).run(&mut b, steps, &mut rng);

    // Identical seeds + identical kernels ⇒ identical trajectories.
    assert_eq!(a.canonical_form(), b.canonical_form());
}

#[test]
fn monochromatic_gamma_acts_as_extra_lambda() {
    // On one color, e'_i − e_i = e' − e, so (λ, γ) ≡ (λγ, 1). Verify the
    // trajectory identity for λγ matched pairs under the same seed.
    use sops::core::{Bias, SeparationChain};
    let n = 25;
    let steps = 200_000;

    let mut rng = StdRng::seed_from_u64(9);
    let mut a = construct::line_monochromatic(n).unwrap();
    SeparationChain::new(Bias::new(2.0, 3.0).unwrap()).run(&mut a, steps, &mut rng);

    let mut rng = StdRng::seed_from_u64(9);
    let mut b = construct::line_monochromatic(n).unwrap();
    SeparationChain::new(Bias::new(6.0, 1.0).unwrap()).run(&mut b, steps, &mut rng);

    assert_eq!(a.canonical_form(), b.canonical_form());
}
