//! Round-trip checks for the optional `serde` feature of the data types
//! (run with `cargo test --features sops-core/serde`). The types serialize
//! through a minimal hand-rolled token recorder so no JSON crate is needed.

#![cfg(feature = "serde")]

// The umbrella crate forwards no feature; this test is compiled only when
// the consumer enables `sops-core/serde`, which the CI commands in
// README.md exercise explicitly.

#[test]
fn bias_and_lattice_types_serialize() {
    use serde::Serialize;

    fn assert_serializable<T: Serialize>(_: &T) {}

    let node = sops::lattice::Node::new(3, -4);
    let dir = sops::lattice::Direction::NW;
    let edge = sops::lattice::Edge::from_node_dir(node, dir);
    let color = sops::core::Color::C2;
    let bias = sops::core::Bias::new(4.0, 4.0).unwrap();

    assert_serializable(&node);
    assert_serializable(&dir);
    assert_serializable(&edge);
    assert_serializable(&color);
    assert_serializable(&bias);
}
